"""Tests for address-calculation sorting (Figures 11–13)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.machine import CONFLICT_POLICIES, CostModel, Memory, ScalarProcessor, VectorMachine
from repro.mem import BumpAllocator
from repro.sorting import (
    AddressCalcWorkspace,
    scalar_address_calc_sort,
    vector_address_calc_sort,
)

VMAX = 100  # small range so hypothesis hits heavy duplication


def build(n_max=64, seed=0):
    vm = VectorMachine(
        Memory(3 * n_max + 64, cost_model=CostModel.free(), seed=seed)
    )
    ws = AddressCalcWorkspace(BumpAllocator(vm.mem), n_max)
    return vm, ws


class TestFigure13Example:
    """The paper's worked example: sort [38, 11, 42, 39] with keys in
    [0, 100) — scalar and vector must both give [11, 38, 39, 42]."""

    DATA = np.array([38, 11, 42, 39], dtype=np.int64)

    def test_scalar(self):
        vm, ws = build()
        sp = ScalarProcessor(vm.mem)
        out = scalar_address_calc_sort(sp, ws, self.DATA, vmax=VMAX)
        assert np.array_equal(out, [11, 38, 39, 42])

    def test_vector(self):
        vm, ws = build()
        out = vector_address_calc_sort(vm, ws, self.DATA, vmax=VMAX)
        assert np.array_equal(out, [11, 38, 39, 42])

    def test_hash_is_order_preserving(self):
        """The §4.2 property: data[i] <= data[j] => hash(i) <= hash(j)."""
        n = 4
        h = (2 * n * np.sort(self.DATA)) // VMAX
        assert (np.diff(h) >= 0).all()


class TestEdgeCases:
    def test_empty(self):
        vm, ws = build()
        out = vector_address_calc_sort(vm, ws, np.array([], dtype=np.int64), vmax=VMAX)
        assert out.size == 0

    def test_single(self):
        vm, ws = build()
        assert np.array_equal(
            vector_address_calc_sort(vm, ws, np.array([42]), vmax=VMAX), [42]
        )

    def test_all_equal(self):
        vm, ws = build()
        a = np.full(20, 55, dtype=np.int64)
        assert np.array_equal(
            vector_address_calc_sort(vm, ws, a, vmax=VMAX), a
        )

    def test_all_max_value(self):
        """Every element at vmax-1: the hash puts them all in the last
        spread slot; the overflow third of C must absorb them."""
        vm, ws = build()
        a = np.full(16, VMAX - 1, dtype=np.int64)
        assert np.array_equal(vector_address_calc_sort(vm, ws, a, vmax=VMAX), a)

    def test_all_zero(self):
        vm, ws = build()
        a = np.zeros(16, dtype=np.int64)
        assert np.array_equal(vector_address_calc_sort(vm, ws, a, vmax=VMAX), a)

    def test_reverse_sorted(self):
        vm, ws = build()
        a = np.arange(50, dtype=np.int64)[::-1].copy()
        out = vector_address_calc_sort(vm, ws, a, vmax=VMAX)
        assert np.array_equal(out, np.arange(50))

    def test_out_of_range_rejected(self):
        vm, ws = build()
        with pytest.raises(ReproError):
            vector_address_calc_sort(vm, ws, np.array([-1]), vmax=VMAX)
        with pytest.raises(ReproError):
            vector_address_calc_sort(vm, ws, np.array([VMAX]), vmax=VMAX)

    def test_capacity_exceeded_rejected(self):
        vm, ws = build(n_max=8)
        with pytest.raises(ReproError):
            vector_address_calc_sort(vm, ws, np.zeros(9, dtype=np.int64), vmax=VMAX)

    def test_2d_rejected(self):
        vm, ws = build()
        with pytest.raises(ReproError):
            vector_address_calc_sort(vm, ws, np.zeros((2, 2), dtype=np.int64), vmax=VMAX)


class TestWorkspaceReuse:
    def test_two_sorts_same_workspace(self):
        vm, ws = build()
        a1 = np.array([9, 3, 7], dtype=np.int64)
        a2 = np.array([50, 2, 2, 80], dtype=np.int64)
        assert np.array_equal(vector_address_calc_sort(vm, ws, a1, vmax=VMAX), [3, 7, 9])
        assert np.array_equal(vector_address_calc_sort(vm, ws, a2, vmax=VMAX), [2, 2, 50, 80])


@settings(max_examples=60, deadline=None)
@given(
    a=st.lists(st.integers(0, VMAX - 1), min_size=0, max_size=64),
    seed=st.integers(0, 5),
    policy=st.sampled_from(CONFLICT_POLICIES),
)
def test_vector_sorts_correctly(a, seed, policy):
    """Property: output is sorted and a permutation of the input, for
    arbitrary duplication patterns and conflict policies."""
    a = np.asarray(a, dtype=np.int64)
    vm, ws = build(seed=seed)
    out = vector_address_calc_sort(vm, ws, a, vmax=VMAX, policy=policy)
    assert np.array_equal(out, np.sort(a))


@settings(max_examples=30, deadline=None)
@given(a=st.lists(st.integers(0, VMAX - 1), min_size=0, max_size=48))
def test_scalar_sorts_correctly(a):
    a = np.asarray(a, dtype=np.int64)
    vm, ws = build()
    sp = ScalarProcessor(vm.mem)
    out = scalar_address_calc_sort(sp, ws, a, vmax=VMAX)
    assert np.array_equal(out, np.sort(a))


@settings(max_examples=20, deadline=None)
@given(
    a=st.lists(st.integers(0, 2**40 - 1), min_size=1, max_size=32),
    seed=st.integers(0, 3),
)
def test_large_value_range(a, seed):
    """Default Vmax (2^40) — exercises the overflow-safe hash."""
    a = np.asarray(a, dtype=np.int64)
    vm, ws = build(seed=seed)
    out = vector_address_calc_sort(vm, ws, a)
    assert np.array_equal(out, np.sort(a))
