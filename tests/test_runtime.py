"""Unit tests for the streaming runtime: queue admission, batch
policies, carryover buffering, executor batches, metrics, the service
loop and its CLI entry point."""

import json
import math
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.bench.reporting import write_json
from repro.errors import ReproError
from repro.machine import CostModel
from repro.runtime import (
    AdaptiveBatcher,
    BatchRecord,
    BoundedQueue,
    CarryoverBuffer,
    DeadlineBatcher,
    FixedBatcher,
    Request,
    StreamExecutor,
    StreamMetrics,
    StreamService,
    closed_loop_workload,
    make_batcher,
    open_loop_workload,
    requests_from_keys,
    zipf_keys,
)

FREE = CostModel.free()
TMP_JSON = Path(tempfile.gettempdir()) / "repro_test_empty_metrics.json"


def req(rid=0, kind="hash", key=1, **kw):
    return Request(rid=rid, kind=kind, key=key, **kw)


class TestRequest:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            Request(rid=0, kind="nope", key=1)

    def test_latency(self):
        r = req()
        r.arrival, r.completed = 10.0, 35.0
        assert r.latency == 25.0

    def test_latency_nan_until_completed(self):
        # A never-completed request has no latency — NaN, not a fake 0
        # measured against the epoch.
        r = req()
        r.arrival = 10.0
        assert math.isnan(r.latency)


class TestBoundedQueue:
    def test_fifo_take(self):
        q = BoundedQueue(4)
        for i in range(3):
            assert q.offer(req(rid=i), now=0.0)
        assert [r.rid for r in q.take(2)] == [0, 1]
        assert q.depth == 1

    def test_block_policy_keeps_request(self):
        q = BoundedQueue(2, admission="block")
        assert q.offer(req(0), 0.0) and q.offer(req(1), 0.0)
        assert not q.offer(req(2), 0.0)
        assert q.stats.blocked_offers == 1 and q.stats.rejected == 0
        assert q.stats.blocked_requests == 1
        assert not q.offer(req(2), 0.0)  # same request retried
        assert q.stats.blocked_offers == 2  # every offer counts...
        assert q.stats.blocked_requests == 1  # ...each request once
        assert q.depth == 2

    def test_reject_policy_drops(self):
        q = BoundedQueue(1, admission="reject")
        assert q.offer(req(0), 0.0)
        assert not q.offer(req(1), 0.0)
        assert q.stats.rejected == 1

    def test_enqueue_timestamp_set(self):
        q = BoundedQueue(4)
        r = req()
        q.offer(r, now=123.0)
        assert r.enqueued == 123.0
        assert q.oldest_enqueued() == 123.0

    def test_bad_config(self):
        with pytest.raises(ReproError):
            BoundedQueue(0)
        with pytest.raises(ReproError):
            BoundedQueue(4, admission="maybe")


class TestBatchers:
    def test_fixed_target(self):
        assert FixedBatcher(64).target_size() == 64
        with pytest.raises(ReproError):
            FixedBatcher(0)

    def test_deadline_wake_before_deadline(self):
        b = DeadlineBatcher(deadline=100.0, max_size=32)
        # wakes at the sooner of next arrival / oldest+deadline
        assert b.wake_time(0.0, oldest_enqueued=10.0, next_arrival=500.0) == 110.0
        assert b.wake_time(0.0, oldest_enqueued=10.0, next_arrival=50.0) == 50.0

    def test_deadline_blown_flushes(self):
        b = DeadlineBatcher(deadline=100.0, max_size=32)
        assert b.wake_time(200.0, oldest_enqueued=10.0, next_arrival=500.0) == 200.0

    def test_adaptive_shrinks_on_high_rounds(self):
        b = AdaptiveBatcher(initial=256, min_size=16, smoothing=1.0)
        b.observe(256, rounds=50, multiplicity=50, filtered=0)
        assert b.target_size() < 256

    def test_adaptive_grows_on_low_rounds(self):
        b = AdaptiveBatcher(initial=64, max_size=512, smoothing=1.0)
        b.observe(64, rounds=1, multiplicity=1, filtered=0)
        assert b.target_size() > 64

    def test_adaptive_respects_bounds(self):
        b = AdaptiveBatcher(initial=16, min_size=16, max_size=32, smoothing=1.0)
        for _ in range(10):
            b.observe(16, rounds=100, multiplicity=100, filtered=0)
        assert b.target_size() == 16
        for _ in range(10):
            b.observe(16, rounds=1, multiplicity=1, filtered=0)
        assert b.target_size() == 32

    def test_adaptive_ignores_recirculation_multiplicity(self):
        # Under carryover M stays high while rounds stay at 1; the
        # policy must follow rounds or it would pin itself at min_size.
        b = AdaptiveBatcher(initial=64, max_size=512, smoothing=1.0)
        b.observe(64, rounds=1, multiplicity=300, filtered=63)
        assert b.target_size() > 64

    def test_adaptive_skips_carried_only_batches(self):
        # A batch that is pure recirculated carryover is the drain tail
        # of earlier conflicts, not a signal about arrival sharing; it
        # must leave the EMA (and hence the target size) untouched.
        b = AdaptiveBatcher(initial=64, max_size=512, smoothing=1.0)
        b.observe(32, rounds=30, multiplicity=30, filtered=31, carried=32)
        assert b.target_size() == 64
        assert b.m_ema is None
        # A mixed batch (some fresh lanes) still feeds the EMA.
        b.observe(32, rounds=1, multiplicity=1, filtered=0, carried=16)
        assert b.target_size() > 64

    def test_adaptive_parameter_validation(self):
        with pytest.raises(ReproError):
            AdaptiveBatcher(initial=8, min_size=16)  # initial < min
        with pytest.raises(ReproError):
            AdaptiveBatcher(m_low=8.0, m_high=3.0)
        with pytest.raises(ReproError):
            AdaptiveBatcher(smoothing=0.0)
        with pytest.raises(ReproError):
            AdaptiveBatcher(grow=1.0)  # could never grow
        with pytest.raises(ReproError):
            AdaptiveBatcher(shrink=1.5)  # could never shrink
        with pytest.raises(ReproError):
            AdaptiveBatcher(shrink=0.0)  # would zero the size

    def test_make_batcher(self):
        assert make_batcher("fixed", batch_size=8).name == "fixed"
        assert make_batcher("deadline").name == "deadline"
        assert make_batcher("adaptive").name == "adaptive"
        with pytest.raises(ReproError):
            make_batcher("nope")


class TestCarryoverBuffer:
    def test_drain_ready_dedups_by_group(self):
        buf = CarryoverBuffer()
        reqs = [req(rid=i) for i in range(4)]
        for r, g in zip(reqs, (7, 7, 7, 9)):
            r.group = g
        buf.put(reqs)
        ready = buf.drain_ready()
        assert [r.rid for r in ready] == [0, 3]  # one per group, FIFO
        assert buf.depth == 2
        assert all(r.attempts == 1 for r in reqs)

    def test_drain_ready_eventually_empties(self):
        buf = CarryoverBuffer()
        reqs = [req(rid=i) for i in range(5)]
        for r in reqs:
            r.group = 42
        buf.put(reqs)
        seen = []
        while len(buf):
            seen.extend(r.rid for r in buf.drain_ready())
        assert seen == [0, 1, 2, 3, 4]  # one sibling released per drain
        assert buf.total_carried == 5

    def test_full_drain(self):
        buf = CarryoverBuffer()
        buf.put([req(rid=1), req(rid=2)])
        assert len(buf.drain()) == 2
        assert buf.depth == 0


class TestExecutor:
    def make(self, n=64, **kw):
        reqs = requests_from_keys(range(n))
        return StreamExecutor.for_workload(reqs, cost_model=FREE, **kw), reqs

    def test_hash_batch_completes_distinct_keys(self):
        ex, reqs = self.make(10)
        result = ex.execute(reqs)
        assert len(result.completed) == 10
        assert result.filtered == 0
        assert sorted(ex.table.stored_keys().tolist()) == list(range(10))

    def test_hash_carryover_filters_duplicates(self):
        reqs = requests_from_keys([5, 5, 5, 8])
        ex = StreamExecutor.for_workload(reqs, cost_model=FREE, carryover=True)
        result = ex.execute(reqs)
        # one winner for key 5's chain head, plus key 8
        assert len(result.completed) == 2
        assert len(result.carried) == 2
        assert all(r.group != -1 for r in result.carried)
        assert result.rounds == 1

    def test_hash_retry_mode_completes_all(self):
        reqs = requests_from_keys([5, 5, 5, 8])
        ex = StreamExecutor.for_workload(reqs, cost_model=FREE, carryover=False)
        result = ex.execute(reqs)
        assert len(result.completed) == 4
        assert result.rounds == 3  # M of the index vector
        assert result.multiplicity == 3

    def test_bst_carryover_resumes_descent(self):
        from repro.mem.arena import NIL

        reqs = requests_from_keys([50, 50, 20, 80], kind="bst")
        ex = StreamExecutor.for_workload(reqs, cost_model=FREE, carryover=True)
        result = ex.execute(reqs)
        # all four lanes race for the empty root; one wins, three defer
        assert len(result.completed) == 1
        assert len(result.carried) == 3
        assert all(r.node != NIL for r in result.carried)  # keep built node
        carried = result.carried
        batches = 1
        while carried:
            carried = ex.execute(carried).carried
            batches += 1
        assert batches >= 3  # the two 50s can never claim the same round
        assert ex.tree.inorder() == [20, 50, 50, 80]
        ex.tree.check_bst_invariant()

    def test_list_bumps_apply_once_per_request(self):
        reqs = requests_from_keys([3, 3, 3], kind="list", deltas=[2, 5, 7])
        ex = StreamExecutor.for_workload(reqs, cost_model=FREE, n_cells=8,
                                         carryover=False)
        ex.execute(reqs)
        values = ex.list_values()
        assert values[3] == 14
        assert sum(values) == 14

    def test_list_request_out_of_range(self):
        reqs = requests_from_keys([99], kind="list")
        ex = StreamExecutor.for_workload(reqs, cost_model=FREE, n_cells=8)
        with pytest.raises(ReproError):
            ex.execute(reqs)

    def test_mixed_kind_batch(self):
        reqs = (requests_from_keys([1, 2], kind="hash")
                + requests_from_keys([3], kind="bst")
                + requests_from_keys([0], kind="list"))
        for i, r in enumerate(reqs):
            r.rid = i
        ex = StreamExecutor.for_workload(reqs, cost_model=FREE, n_cells=4)
        result = ex.execute(reqs)
        assert len(result.completed) == 4
        assert ex.tree.inorder() == [3]
        assert ex.list_values()[0] == 1

    def test_empty_batch(self):
        ex, _ = self.make(4)
        result = ex.execute([])
        assert result.size == 0 and result.rounds == 0

    def test_cycles_charged_under_s810(self):
        reqs = requests_from_keys(range(32))
        ex = StreamExecutor.for_workload(reqs, cost_model=CostModel.s810())
        result = ex.execute(reqs)
        assert result.cycles > 0


class TestMetrics:
    def record(self, **kw):
        defaults = dict(index=0, size=10, carried_in=0, queue_depth=5,
                        rounds=2, multiplicity=2, filtered=3, completed=7,
                        cycles=100.0)
        defaults.update(kw)
        return BatchRecord(**defaults)

    def test_ratios(self):
        b = self.record()
        assert b.filtered_ratio == 0.3
        assert b.cycles_per_lane == 10.0

    def test_summary_aggregates(self):
        m = StreamMetrics()
        m.record_batch(self.record(index=0))
        m.record_batch(self.record(index=1, size=20, filtered=0, completed=20,
                                   cycles=200.0))
        for lat in (10.0, 20.0, 30.0):
            m.record_completion(lat)
        s = m.summary()
        assert s["batches"] == 2
        assert s["completed"] == 27
        assert s["total_cycles"] == 300.0
        assert s["filtered_ratio"] == pytest.approx(3 / 30)
        assert s["p50_latency"] == 20.0

    def test_tables_render(self):
        m = StreamMetrics()
        for i in range(30):
            m.record_batch(self.record(index=i))
        table = m.batch_table(max_rows=5)
        assert len(table.splitlines()) <= 7  # header + rule + <=5 rows
        assert "cyc/lane" in table
        assert "cycles_per_request" in m.summary_table()

    def test_empty_metrics(self):
        # No completions means no latency distribution: percentiles and
        # cycles-per-request are undefined (nan), not a fake 0.0 that
        # would read as an infinitely fast service.
        m = StreamMetrics()
        assert math.isnan(m.latency_percentile(99))
        assert math.isnan(m.cycles_per_request)
        assert m.summary()["completed"] == 0
        # The tables render undefined metrics as an em dash...
        assert "—" in m.summary_table()
        # ...and JSON reports carry null, never the invalid NaN token.
        payload = write_json(TMP_JSON, m.summary())
        try:
            data = json.loads(payload.read_text())
            assert data["p99_latency"] is None
            assert data["cycles_per_request"] is None
        finally:
            payload.unlink()


class TestWorkloads:
    def test_zipf_uniform_and_skewed(self):
        rng = np.random.default_rng(0)
        uni = zipf_keys(rng, 5000, 0.0, 100)
        hot = zipf_keys(rng, 5000, 1.4, 100)
        _, cu = np.unique(uni, return_counts=True)
        _, ch = np.unique(hot, return_counts=True)
        assert ch.max() > 3 * cu.max()  # skew concentrates mass

    def test_zipf_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ReproError):
            zipf_keys(rng, 10, -1.0, 100)
        with pytest.raises(ReproError):
            zipf_keys(rng, 10, 1.0, 0)

    def test_open_loop_arrivals_increase(self):
        rng = np.random.default_rng(0)
        reqs = open_loop_workload(rng, 50, mean_gap=10.0)
        arrivals = [r.arrival for r in reqs]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > 0

    def test_closed_loop_all_at_zero(self):
        rng = np.random.default_rng(0)
        reqs = closed_loop_workload(rng, 20, kinds=("hash", "list"), n_cells=8)
        assert all(r.arrival == 0.0 for r in reqs)
        assert all(r.key < 8 for r in reqs if r.kind == "list")

    def test_requests_from_keys_validates(self):
        with pytest.raises(ReproError):
            requests_from_keys([1, 2], deltas=[1])


class TestStreamService:
    def run_service(self, reqs, **kw):
        kw.setdefault("cost_model", FREE)
        kw.setdefault("table_size", 37)
        svc = StreamService.for_workload(reqs, **kw)
        return svc, svc.run(reqs)

    def test_completes_everything(self):
        reqs = requests_from_keys(range(100))
        _, m = self.run_service(reqs, batcher=FixedBatcher(16))
        assert m.summary()["completed"] == 100
        assert m.rejected == 0

    def test_open_loop_under_s810_has_latency(self):
        rng = np.random.default_rng(3)
        reqs = open_loop_workload(rng, 200, mean_gap=20.0, skew=0.8)
        svc, m = self.run_service(reqs, cost_model=CostModel.s810(),
                                  batcher=FixedBatcher(32))
        s = m.summary()
        assert s["completed"] == 200
        assert s["p99_latency"] >= s["p50_latency"] > 0

    def test_reject_admission_drops_overflow(self):
        from repro.runtime import BoundedQueue
        reqs = requests_from_keys(range(50))
        svc, m = self.run_service(
            reqs, queue=BoundedQueue(8, admission="reject"),
            batcher=FixedBatcher(8),
        )
        s = m.summary()
        assert s["completed"] + m.rejected == 50
        assert m.rejected > 0

    def test_block_admission_loses_nothing(self):
        from repro.runtime import BoundedQueue
        reqs = requests_from_keys(range(50))
        _, m = self.run_service(
            reqs, queue=BoundedQueue(8, admission="block"),
            batcher=FixedBatcher(8),
        )
        assert m.summary()["completed"] == 50
        assert m.blocked_offers > 0
        assert 0 < m.blocked_requests <= m.blocked_offers

    def test_carryover_recirculates_hot_key(self):
        reqs = requests_from_keys([7] * 20)
        svc, m = self.run_service(reqs, batcher=FixedBatcher(32),
                                  carryover=True)
        s = m.summary()
        assert s["completed"] == 20
        assert s["batches"] >= 20  # one hot insert per batch (ELS)
        assert sorted(svc.executor.table.stored_keys().tolist()) == [7] * 20

    def test_trace_hook_collects_mix(self):
        reqs = requests_from_keys(range(30))
        _, m = self.run_service(reqs, cost_model=CostModel.s810(), trace=True)
        assert m.instruction_mix is not None
        assert any(k.startswith("v_") or "gather" in k
                   for k in m.instruction_mix)

    def test_deadline_policy_flushes_partial_batches(self):
        rng = np.random.default_rng(1)
        reqs = open_loop_workload(rng, 60, mean_gap=100.0)
        _, m = self.run_service(
            reqs, cost_model=CostModel.s810(),
            batcher=DeadlineBatcher(deadline=500.0, max_size=64),
        )
        s = m.summary()
        assert s["completed"] == 60
        assert s["batches"] > 1  # deadline forced partial flushes


class TestStreamCli:
    def test_stream_smoke(self, capsys):
        from repro.__main__ import main
        assert main(["stream", "--requests", "80", "--policy", "adaptive",
                     "--skew", "1.1", "--closed-loop", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "cycles_per_request" in out
        assert "p99_latency" in out
        assert "filt%" in out

    def test_stream_all_kinds_and_trace(self, capsys):
        from repro.__main__ import main
        assert main(["stream", "--requests", "40", "--kinds", "hash,bst,list",
                     "--policy", "deadline", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "instruction mix" in out

    def test_stream_retry_mode(self, capsys):
        from repro.__main__ import main
        assert main(["stream", "--requests", "40", "--no-carryover",
                     "--policy", "fixed", "--batch-size", "16"]) == 0
        assert "retry-in-batch" in capsys.readouterr().out
