"""Tests for cons cells and parallel list rewriting (Figure 3a)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.lists import (
    ConsArena,
    decode_atom,
    encode_atom,
    is_atom,
    scalar_map_add_per_cell,
    scalar_map_add_per_reference,
    vector_map_add_per_cell,
    vector_map_add_per_reference,
)
from repro.machine import CONFLICT_POLICIES, CostModel, Memory, ScalarProcessor, VectorMachine
from repro.mem import NIL, BumpAllocator


def build(capacity=512, seed=0):
    vm = VectorMachine(
        Memory(8 * capacity + 64, cost_model=CostModel.free(), seed=seed)
    )
    arena = ConsArena(BumpAllocator(vm.mem), capacity)
    return vm, arena


class TestAtoms:
    def test_roundtrip(self):
        for v in (0, 1, 1000):
            assert decode_atom(encode_atom(v)) == v

    def test_atoms_are_negative(self):
        assert is_atom(encode_atom(0))
        assert not is_atom(1)
        assert not is_atom(NIL)

    def test_negative_atom_rejected(self):
        with pytest.raises(ReproError):
            encode_atom(-1)

    def test_decode_pointer_rejected(self):
        with pytest.raises(ReproError):
            decode_atom(5)


class TestConstruction:
    def test_from_to_values(self):
        _, a = build()
        head = a.from_values([1, 2, 3])
        assert a.to_values(head) == [1, 2, 3]
        assert a.length(head) == 3

    def test_empty_list_is_nil(self):
        _, a = build()
        assert a.from_values([]) == NIL
        assert a.to_values(NIL) == []

    def test_shared_suffix(self):
        """Figure 3a: two lists sharing a tail."""
        _, a = build()
        s = a.from_values([10, 11])
        l1 = a.from_values([1], tail=s)
        l2 = a.from_values([2, 3], tail=s)
        assert a.to_values(l1) == [1, 10, 11]
        assert a.to_values(l2) == [2, 3, 10, 11]
        assert a.shared_suffix_start(l1, l2) == s

    def test_no_shared_suffix(self):
        _, a = build()
        l1 = a.from_values([1])
        l2 = a.from_values([2])
        assert a.shared_suffix_start(l1, l2) == NIL

    def test_cycle_detection(self):
        _, a = build()
        head = a.from_values([1, 2])
        cells = a.cell_addresses(head)
        a.cells.poke_field(cells[-1], "cdr", head)  # make it cyclic
        with pytest.raises(ReproError):
            a.to_values(head)


class TestPerReferenceSemantics:
    def test_shared_cells_updated_once_per_list(self):
        vm, a = build()
        s = a.from_values([100])
        l1 = a.from_values([1], tail=s)
        l2 = a.from_values([2], tail=s)
        l3 = s
        vector_map_add_per_reference(vm, a, [l1, l2, l3], delta=10)
        # cell 100 referenced by 3 lists -> +30
        assert a.to_values(s) == [130]
        assert a.to_values(l1) == [11, 130]

    def test_empty_heads(self):
        vm, a = build()
        assert vector_map_add_per_reference(vm, a, [], delta=5) == 0

    def test_nil_list_among_heads(self):
        vm, a = build()
        l1 = a.from_values([7])
        vector_map_add_per_reference(vm, a, [NIL, l1], delta=1)
        assert a.to_values(l1) == [8]

    @pytest.mark.parametrize("policy", CONFLICT_POLICIES)
    def test_policies(self, policy):
        vm, a = build(seed=4)
        s = a.from_values([5, 6])
        heads = [a.from_values([i], tail=s) for i in range(6)]
        vector_map_add_per_reference(vm, a, heads, delta=1, policy=policy)
        assert a.to_values(s) == [11, 12]  # 6 references each


class TestPerCellSemantics:
    def test_shared_cells_updated_once_total(self):
        vm, a = build()
        s = a.from_values([100])
        l1 = a.from_values([1], tail=s)
        l2 = a.from_values([2], tail=s)
        vector_map_add_per_cell(vm, a, [l1, l2, s], delta=10)
        assert a.to_values(s) == [110]

    def test_disjoint_lists_behave_like_map(self):
        vm, a = build()
        l1 = a.from_values([1, 2])
        l2 = a.from_values([3])
        vector_map_add_per_cell(vm, a, [l1, l2], delta=5)
        assert a.to_values(l1) == [6, 7]
        assert a.to_values(l2) == [8]

    def test_same_head_listed_twice(self):
        vm, a = build()
        l1 = a.from_values([1, 2])
        vector_map_add_per_cell(vm, a, [l1, l1], delta=5)
        assert a.to_values(l1) == [6, 7]


@st.composite
def shared_list_scenarios(draw):
    """Random Figure-3a scenarios: k lists, random private prefixes,
    one optional shared suffix."""
    n_lists = draw(st.integers(1, 5))
    shared = draw(st.lists(st.integers(0, 50), max_size=6))
    prefixes = [
        draw(st.lists(st.integers(0, 50), max_size=6)) for _ in range(n_lists)
    ]
    attach = [draw(st.booleans()) for _ in range(n_lists)]
    return shared, prefixes, attach


def _build_scenario(arena, scenario):
    shared, prefixes, attach = scenario
    s = arena.from_values(shared)
    heads = []
    for pfx, att in zip(prefixes, attach):
        heads.append(arena.from_values(pfx, tail=s if att else NIL))
    return heads


@settings(max_examples=40, deadline=None)
@given(scenario=shared_list_scenarios(), seed=st.integers(0, 5))
def test_per_reference_scalar_vector_agree(scenario, seed):
    vm, va = build(seed=seed)
    vh = _build_scenario(va, scenario)
    vector_map_add_per_reference(vm, va, vh, delta=3)

    vm2, sa = build(seed=seed)
    sh = _build_scenario(sa, scenario)
    scalar_map_add_per_reference(ScalarProcessor(vm2.mem), sa, sh, delta=3)

    assert [va.to_values(h) for h in vh] == [sa.to_values(h) for h in sh]


@settings(max_examples=40, deadline=None)
@given(scenario=shared_list_scenarios(), seed=st.integers(0, 5))
def test_per_cell_scalar_vector_agree(scenario, seed):
    vm, va = build(seed=seed)
    vh = _build_scenario(va, scenario)
    vector_map_add_per_cell(vm, va, vh, delta=3)

    vm2, sa = build(seed=seed)
    sh = _build_scenario(sa, scenario)
    scalar_map_add_per_cell(ScalarProcessor(vm2.mem), sa, sh, delta=3)

    assert [va.to_values(h) for h in vh] == [sa.to_values(h) for h in sh]
