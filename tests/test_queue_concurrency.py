"""BoundedQueue under concurrent producers (and a draining consumer).

The serving layer fronts the queue with real concurrency, so the
admission bookkeeping must be atomic: no lost or duplicated requests,
``admitted + rejected + blocked == offered`` exactly, and the depth
never overshoots capacity regardless of interleaving.
"""

from __future__ import annotations

import threading

from repro.runtime.queue import BoundedQueue, Request


def _reqs(start: int, n: int):
    return [Request(rid=start + i, kind="hash", key=i % 97) for i in range(n)]


def _run_producers(queue, per_producer, n_producers, retry_blocked):
    """Offer from N threads; returns per-producer admitted rid lists."""
    admitted = [[] for _ in range(n_producers)]
    barrier = threading.Barrier(n_producers)

    def produce(p):
        barrier.wait()  # maximise interleaving
        for req in _reqs(p * per_producer, per_producer):
            while True:
                if queue.offer(req, now=0.0):
                    admitted[p].append(req.rid)
                    break
                if not retry_blocked:
                    break

    threads = [
        threading.Thread(target=produce, args=(p,))
        for p in range(n_producers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return admitted


class TestConcurrentReject:
    def test_counters_balance_and_capacity_holds(self):
        queue = BoundedQueue(capacity=64, admission="reject")
        admitted = _run_producers(
            queue, per_producer=200, n_producers=8, retry_blocked=False
        )
        stats = queue.stats
        n_admitted = sum(len(a) for a in admitted)
        assert stats.offered == 8 * 200
        assert stats.admitted == n_admitted == queue.depth
        assert stats.blocked_offers == 0
        assert stats.blocked_requests == 0
        assert stats.blocked == 0  # legacy alias tracks blocked_offers
        assert stats.admitted + stats.rejected == stats.offered
        # the full-check and append are atomic: never overshoots
        assert queue.depth <= 64
        assert stats.max_depth <= 64

    def test_no_lost_or_duplicated_requests(self):
        queue = BoundedQueue(capacity=4096, admission="reject")
        admitted = _run_producers(
            queue, per_producer=300, n_producers=6, retry_blocked=False
        )
        # capacity exceeds the offered load: everything admitted once
        drained = [r.rid for r in queue.take(queue.depth)]
        assert sorted(drained) == sorted(
            rid for lst in admitted for rid in lst
        )
        assert len(set(drained)) == len(drained) == 6 * 300


class TestConcurrentBlock:
    def test_blocked_producers_all_finish_against_consumer(self):
        """Block-mode fairness: with a consumer draining, every
        producer's retries eventually land — nothing is dropped and the
        ledger stays exact under contention."""
        queue = BoundedQueue(capacity=32, admission="block")
        taken = []
        done = threading.Event()

        def consume():
            while not (done.is_set() and queue.depth == 0):
                taken.extend(queue.take(8))

        consumer = threading.Thread(target=consume)
        consumer.start()
        admitted = _run_producers(
            queue, per_producer=150, n_producers=6, retry_blocked=True
        )
        done.set()
        consumer.join()
        stats = queue.stats
        assert all(len(a) == 150 for a in admitted)  # nobody starved out
        assert stats.admitted == 6 * 150
        assert stats.rejected == 0
        assert stats.admitted + stats.blocked_offers == stats.offered
        # every retried offer counts, but a request blocks at most once
        assert stats.blocked_requests <= stats.blocked_offers
        assert stats.blocked_requests <= 6 * 150
        assert stats.max_depth <= 32
        rids = [r.rid for r in taken]
        assert len(set(rids)) == len(rids) == 6 * 150

    def test_reject_mode_sheds_under_contention(self):
        queue = BoundedQueue(capacity=16, admission="reject")
        _run_producers(
            queue, per_producer=100, n_producers=4, retry_blocked=False
        )
        stats = queue.stats
        assert stats.rejected > 0  # 400 offers into 16 slots must shed
        assert stats.admitted + stats.rejected == stats.offered == 400
        assert queue.depth == stats.admitted <= 16


class TestConcurrentReaders:
    def test_len_depth_full_are_locked_and_consistent(self):
        """Hammer ``__len__``/``depth``/``full`` from reader threads
        while producers and a consumer churn the queue: every read must
        be a value the locked counter could actually hold (0..capacity),
        and ``full`` must agree with a same-instant depth reading."""
        queue = BoundedQueue(capacity=32, admission="reject")
        stop = threading.Event()
        bad: list = []

        def read():
            while not stop.is_set():
                d = queue.depth
                n = len(queue)
                f = queue.full
                if not (0 <= d <= 32 and 0 <= n <= 32):
                    bad.append(("range", d, n))
                # full is sampled after depth; it may disagree only by
                # a concurrent mutation, never by a torn read
                if f and len(queue) == 0 and queue.depth == 0:
                    bad.append(("full-but-empty", f))

        def consume():
            while not stop.is_set():
                queue.take(4)

        readers = [threading.Thread(target=read) for _ in range(4)]
        consumer = threading.Thread(target=consume)
        for t in readers + [consumer]:
            t.start()
        _run_producers(
            queue, per_producer=2000, n_producers=4, retry_blocked=False
        )
        stop.set()
        for t in readers + [consumer]:
            t.join()
        assert bad == []
        stats = queue.stats
        assert stats.admitted + stats.rejected == stats.offered == 4 * 2000
        assert stats.max_depth <= 32
