"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        assert "CostModel" in out
        assert "fig10" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "M = 3" in out
        assert "FOL rounds" in out

    def test_figures_subset(self, capsys):
        assert main(["figures", "ablation_conflict_policy"]) == 0
        out = capsys.readouterr().out
        assert "ablation_conflict_policy" in out
        assert "arbitrary" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        out = capsys.readouterr().out
        assert "figures" in out
        assert "stream" in out

    def test_unknown_command_prints_help(self, capsys):
        assert main(["not-a-command"]) == 2
        captured = capsys.readouterr()
        assert "figures" in captured.out
        assert "stream" in captured.out

    def test_help_flag_exits_zero(self):
        assert main(["--help"]) == 0

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["figures", "not_an_experiment"])

    def test_stream(self, capsys):
        assert main(["stream", "--requests", "50", "--policy", "fixed",
                     "--batch-size", "16", "--closed-loop"]) == 0
        out = capsys.readouterr().out
        assert "cycles_per_request" in out
        assert "p50_latency" in out

    def test_stream_sharded(self, capsys):
        assert main(["stream", "--requests", "60", "--closed-loop",
                     "--policy", "fixed", "--batch-size", "16",
                     "--shards", "4", "--kinds", "hash,list"]) == 0
        out = capsys.readouterr().out
        assert "shards=4" in out
        assert "lanes/shard" in out
        assert "mean_shard_occupancy" in out

    def test_stream_sharded_rebalance(self, capsys):
        assert main(["stream", "--requests", "80", "--closed-loop",
                     "--policy", "fixed", "--batch-size", "16",
                     "--shards", "2", "--partitioner", "range",
                     "--rebalance", "--skew", "1.2",
                     "--kinds", "hash,list"]) == 0
        out = capsys.readouterr().out
        assert "migrations" in out


class TestCliBadInput:
    """Invalid sizes must exit 2 with usage help, not crash (ISSUE 2)."""

    @pytest.mark.parametrize("argv", [
        ["stream", "--shards", "0"],
        ["stream", "--shards", "-2"],
        ["stream", "--queue-capacity", "-3"],
        ["stream", "--queue-capacity", "0"],
        ["stream", "--batch-size", "-1"],
        ["stream", "--requests", "-5"],
        ["stream", "--requests", "0"],
        ["stream", "--mean-gap", "-2.0"],
        ["stream", "--deadline", "0"],
        ["stream", "--skew", "-0.5"],
        ["stream", "--table-size", "0"],
        ["stream", "--key-space", "-7"],
        ["stream", "--shards", "two"],
    ])
    def test_bad_sizes_exit_2(self, argv, capsys):
        assert main(argv) == 2
        assert "stream" in capsys.readouterr().out  # help was printed

    def test_bad_partitioner_exits_2(self, capsys):
        assert main(["stream", "--shards", "2",
                     "--partitioner", "zigzag"]) == 2

    @pytest.mark.parametrize("argv", [
        # non-positive bins (argparse _positive_int)
        ["stream", "--requests", "10", "--shards", "2", "--bins", "0"],
        ["stream", "--requests", "10", "--shards", "2", "--bins", "-8"],
        # fewer bins than shards (partition-map validation)
        ["stream", "--requests", "10", "--shards", "4", "--bins", "2"],
        # bins without a sharded engine
        ["stream", "--requests", "10", "--bins", "8"],
        # unknown pacing strategy (argparse choices)
        ["stream", "--requests", "10", "--shards", "2", "--rebalance",
         "--migration", "dribble"],
        # pacing without migration enabled
        ["stream", "--requests", "10", "--shards", "2",
         "--migration", "fluid"],
        # the serve front-end validates the same pair before spawning
        ["serve", "--workers", "2", "--requests", "10",
         "--migration", "batched"],
        ["serve", "--workers", "2", "--requests", "10", "--bins", "0"],
    ])
    def test_bins_and_migration_validation_exits_2(self, argv, capsys):
        assert main(argv) == 2

    @pytest.mark.parametrize("argv", [
        # malformed tenant specs (parse_tenants grammar)
        ["stream", "--requests", "10", "--tenants", "A"],
        ["stream", "--requests", "10", "--tenants", "A=0.7,"],
        ["stream", "--requests", "10", "--tenants", "A=lots"],
        ["stream", "--requests", "10", "--tenants", "A=0.7:gauss"],
        ["stream", "--requests", "10", "--tenants", "A=0.7:zipfx"],
        ["stream", "--requests", "10", "--tenants", "A=0.5,A=0.5"],
        ["stream", "--requests", "10", "--tenants", "A=-1"],
        # malformed SLO specs (parse_slo grammar)
        ["stream", "--requests", "10", "--tenants", "A=1",
         "--slo", "A="],
        ["stream", "--requests", "10", "--tenants", "A=1",
         "--slo", "A=soon"],
        ["stream", "--requests", "10", "--tenants", "A=1",
         "--slo", "A=-5"],
        # stream SLOs are cycles; a wall-clock suffix is an error
        ["stream", "--requests", "10", "--tenants", "A=1",
         "--slo", "A=50ms"],
        # SLO for a tenant that was never declared
        ["stream", "--requests", "10", "--tenants", "A=1",
         "--slo", "B=5000"],
        # --slo / --qos without --tenants
        ["stream", "--requests", "10", "--slo", "A=5000"],
        ["stream", "--requests", "10", "--qos"],
        # --rebalance-objective without --rebalance
        ["stream", "--requests", "10", "--shards", "2",
         "--rebalance-objective", "worst-tenant"],
        # unknown objective (argparse choices)
        ["stream", "--requests", "10", "--shards", "2", "--rebalance",
         "--rebalance-objective", "roundrobin"],
        # non-positive burst factor (argparse _positive_float)
        ["stream", "--requests", "10", "--tenants", "A=1", "--qos",
         "--qos-burst", "0"],
        # serve validates the same combinations before spawning, and
        # its SLOs are wall-clock: a bare cycle count is an error
        ["serve", "--workers", "2", "--requests", "10", "--qos"],
        ["serve", "--workers", "2", "--requests", "10",
         "--slo", "A=50ms"],
        ["serve", "--workers", "2", "--requests", "10",
         "--tenants", "A=1", "--slo", "A=5000"],
        ["serve", "--workers", "2", "--requests", "10",
         "--tenants", "A=0.7:gauss"],
    ])
    def test_tenant_and_qos_validation_exits_2(self, argv, capsys):
        assert main(argv) == 2
