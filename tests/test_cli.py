"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        assert "CostModel" in out
        assert "fig10" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "M = 3" in out
        assert "FOL rounds" in out

    def test_figures_subset(self, capsys):
        assert main(["figures", "ablation_conflict_policy"]) == 0
        out = capsys.readouterr().out
        assert "ablation_conflict_policy" in out
        assert "arbitrary" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        out = capsys.readouterr().out
        assert "figures" in out
        assert "stream" in out

    def test_unknown_command_prints_help(self, capsys):
        assert main(["not-a-command"]) == 2
        captured = capsys.readouterr()
        assert "figures" in captured.out
        assert "stream" in captured.out

    def test_help_flag_exits_zero(self):
        assert main(["--help"]) == 0

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["figures", "not_an_experiment"])

    def test_stream(self, capsys):
        assert main(["stream", "--requests", "50", "--policy", "fixed",
                     "--batch-size", "16", "--closed-loop"]) == 0
        out = capsys.readouterr().out
        assert "cycles_per_request" in out
        assert "p50_latency" in out
