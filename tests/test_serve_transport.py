"""Wire-format tests for the serve transport: row codec + shm blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.spec import EngineContext, registered_kinds, specs
from repro.errors import ReproError
from repro.runtime.queue import Request
from repro.serve import transport
from repro.serve.transport import ROW_COLS, ShmBlock


def _one_of_each_kind():
    """A representative request per registered kind (via the specs'
    own request factories, so arity-2 kinds get valid second keys)."""
    ctx = EngineContext(table_size=127, n_cells=16, key_space=256)
    return [
        spec.make_request(rid, 11 + rid, 3, 2, 0.5 * rid, ctx)
        for rid, spec in enumerate(specs())
    ]


class TestRowCodec:
    def test_roundtrip_every_kind(self):
        reqs = _one_of_each_kind()
        # dirty the mutable execution-state fields too
        for i, r in enumerate(reqs):
            r.attempts = i
            r.slot = 5 + i
            r.group = 1000 + i
            r.home = i % 3
        rows = np.zeros((len(reqs) + 2, ROW_COLS), dtype=np.int64)
        n = transport.encode_requests(reqs, rows)
        assert n == len(reqs)
        back = transport.decode_requests(rows, n)
        for a, b in zip(reqs, back):
            assert (a.rid, a.kind, a.key, a.key2, a.delta) == (
                b.rid, b.kind, b.key, b.key2, b.delta
            )
            assert (a.attempts, a.slot, a.node, a.group, a.home) == (
                b.attempts, b.slot, b.node, b.group, b.home
            )

    def test_kind_codes_follow_registry_order(self):
        assert transport.kind_codes() == registered_kinds()

    def test_apply_row_patches_only_mutable_state(self):
        reqs = _one_of_each_kind()
        rows = np.zeros((len(reqs), ROW_COLS), dtype=np.int64)
        transport.encode_requests(reqs, rows)
        rows[0][transport.COL_ATTEMPTS] = 7
        rows[0][transport.COL_SLOT] = 42
        rows[0][transport.COL_HOME] = 2
        req = reqs[0]
        arrival = req.arrival
        transport.apply_row(req, rows[0])
        assert (req.attempts, req.slot, req.home) == (7, 42, 2)
        assert req.arrival == arrival  # timestamps never cross the wire

    def test_overflow_is_a_hard_error(self):
        reqs = [Request(rid=i, kind="hash", key=i) for i in range(4)]
        rows = np.zeros((2, ROW_COLS), dtype=np.int64)
        with pytest.raises(ReproError, match="inbox"):
            transport.encode_requests(reqs, rows)


class TestShmBlock:
    def test_create_attach_roundtrip_and_unlink(self):
        block = ShmBlock.create((8, ROW_COLS))
        block.array[3, 4] = 77
        peer = ShmBlock.attach(block.name, (8, ROW_COLS))
        assert peer.array[3, 4] == 77
        peer.array[0, 0] = -5  # writes are shared both ways
        assert block.array[0, 0] == -5
        peer.close()
        block.close()
        block.unlink()
        block.unlink()  # idempotent

    def test_attacher_never_unlinks(self):
        block = ShmBlock.create((4,))
        peer = ShmBlock.attach(block.name, (4,))
        peer.close()
        peer.unlink()  # non-owner: must be a no-op
        again = ShmBlock.attach(block.name, (4,))  # still alive
        again.close()
        block.close()
        block.unlink()
