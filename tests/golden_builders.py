"""Deterministic run builders for the observability golden fixtures.

Each builder constructs one fixed-seed run and returns its metrics
object.  ``capture()`` reduces a metrics object to the exact artefacts
the refactor must keep bit-identical — the summary dict (serialised
with sorted keys), every table rendering, and the total simulated
cycles — and ``python -m tests.golden_builders`` regenerates the JSON
fixtures under ``tests/golden/``.

The fixtures were captured from the pre-``repro.obs`` code (PR 9 head)
and are the parity pin for the telemetry refactor: if a summary key,
a table cell or a cycle count changes, ``tests/test_obs_golden.py``
fails with a diff.  Regenerate only for an *intentional* metrics
change, and say so in the commit.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

GOLDEN_DIR = Path(__file__).parent / "golden"

STREAM_BUILDERS = {}


def _stream(name):
    def register(fn):
        STREAM_BUILDERS[name] = fn
        return fn

    return register


@_stream("stream_closed")
def build_stream_closed():
    """Closed-loop mixed-kind run on the sim backend, block admission."""
    from repro.runtime.queue import BoundedQueue
    from repro.runtime.service import StreamService, closed_loop_workload

    rng = np.random.default_rng(0)
    requests = closed_loop_workload(
        rng, 80, kinds=("hash", "list", "bst"), skew=1.1
    )
    service = StreamService.for_workload(
        requests, queue=BoundedQueue(capacity=32, admission="block")
    )
    service.run(requests)
    return service.metrics


@_stream("stream_open")
def build_stream_open():
    """Open-loop run with the adaptive batcher and reject admission."""
    from repro.runtime.batcher import AdaptiveBatcher
    from repro.runtime.queue import BoundedQueue
    from repro.runtime.service import StreamService, open_loop_workload

    rng = np.random.default_rng(1)
    requests = open_loop_workload(
        rng, 60, kinds=("hash", "xfer"), skew=0.8, mean_gap=30.0
    )
    service = StreamService.for_workload(
        requests,
        batcher=AdaptiveBatcher(),
        queue=BoundedQueue(capacity=16, admission="reject"),
    )
    service.run(requests)
    return service.metrics


@_stream("stream_shard_k4")
def build_stream_shard_k4():
    """K=4 sharded run with rebalancing (migration + parked lanes)."""
    from repro.runtime.queue import BoundedQueue
    from repro.runtime.service import StreamService, closed_loop_workload
    from repro.shard.coordinator import ShardCoordinator

    rng = np.random.default_rng(2)
    requests = closed_loop_workload(
        rng, 120, kinds=("hash", "list", "xfer"), skew=1.2
    )
    coordinator = ShardCoordinator.for_workload(
        requests,
        shards=4,
        rebalance=True,
        migration="batched",
    )
    service = StreamService(
        coordinator, queue=BoundedQueue(capacity=48, admission="block")
    )
    service.run(requests)
    return service.metrics


@_stream("stream_qos")
def build_stream_qos():
    """Tenant-tagged run under a QoS policy with cycle SLOs."""
    from repro.runtime.qos import QoSPolicy, apply_slos, parse_slo, parse_tenants
    from repro.runtime.queue import BoundedQueue
    from repro.runtime.service import StreamService
    from repro.runtime.qos import tenant_workload

    tenants = apply_slos(
        parse_tenants("A=0.7:zipf1.2,B=0.3:uniform"),
        parse_slo("A=9000,B=30000", unit="cycles"),
    )
    rng = np.random.default_rng(3)
    requests = tenant_workload(
        rng, 90, tenants, kinds=("hash", "list"), mean_gap=25.0
    )
    policy = QoSPolicy(tenants)
    service = StreamService.for_workload(
        requests,
        queue=BoundedQueue(capacity=24, admission="reject", qos=policy),
    )
    service.run(requests)
    return service.metrics


def build_serve_synthetic():
    """A hand-fed ServeMetrics (serving wall clocks are nondeterministic,
    so the serve parity pin uses synthetic measurements)."""
    from repro.serve.metrics import ExchangeRecord, ServeMetrics

    m = ServeMetrics(workers=2, backend="native")
    m.offered = 40
    m.admitted = 36
    m.rejected = 3
    m.blocked_offers = 5
    m.blocked_requests = 1
    m.queue_max_depth = 9
    m.tenant_weights = {"A": 0.7, "B": 0.3}
    m.tenant_slos = {"A": 0.05}  # B has no SLO: missing-budget cell path
    m.tenant_admission = {
        "A": {"offered": 28, "admitted": 25, "rejected": 3,
              "blocked_offers": 0, "blocked_requests": 0, "max_depth": 6},
        "B": {"offered": 12, "admitted": 11, "rejected": 0,
              "blocked_offers": 5, "blocked_requests": 1, "max_depth": 3},
    }
    rng = np.random.default_rng(4)
    now = 0.0
    for i in range(6):
        seconds = round(float(0.004 + 0.002 * rng.random()), 6)
        now += seconds + 0.001
        m.record_exchange(
            ExchangeRecord(
                index=i,
                size=6,
                carried_in=i % 2,
                queue_depth=7 - i,
                rounds=2,
                completed=6,
                seconds=seconds,
                cross_units=i % 3,
                shard_sizes=(3, 3),
            ),
            now,
        )
        for _ in range(6):
            lat = round(float(0.005 + 0.01 * rng.random()), 6)
            m.record_completion(lat, tenant="A" if rng.random() < 0.7 else "B")
    return m


def capture_stream(metrics):
    """The stream artefacts pinned by the golden fixtures."""
    return {
        "summary": _dumps(metrics.summary()),
        "total_cycles": metrics.total_cycles,
        "summary_table": metrics.summary_table(),
        "batch_table": metrics.batch_table(max_rows=12),
        "shard_table": metrics.shard_table(max_rows=12),
        "tenant_table": metrics.tenant_table(),
    }


def capture_serve(metrics):
    """The serve artefacts pinned by the golden fixtures."""
    return {
        "summary": _dumps(metrics.summary()),
        "summary_table": metrics.summary_table(),
        "exchange_table": metrics.exchange_table(max_rows=12),
        "tenant_table": metrics.tenant_table(),
    }


def capture_bench_payload(tmp_path):
    """Bytes of a write_json payload exercising the NaN->null path."""
    from repro.bench.reporting import write_json
    from repro.serve.metrics import ServeMetrics

    empty = ServeMetrics(workers=1, backend="sim")
    stream = STREAM_BUILDERS["stream_closed"]()
    path = write_json(
        Path(tmp_path) / "BENCH_obs_golden.json",
        {
            "bench": "obs_golden",
            "stream": stream.summary(),
            "serve_empty": empty.summary(),
        },
    )
    return path.read_text()


def _dumps(payload) -> str:
    # allow_nan keeps NaN visible in the pin (write_json's null mapping
    # is pinned separately via capture_bench_payload).
    return json.dumps(payload, indent=2, sort_keys=True, default=_coerce)


def _coerce(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    raise TypeError(f"not JSON-serialisable: {value!r}")


def regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, builder in STREAM_BUILDERS.items():
        artefacts = capture_stream(builder())
        out = GOLDEN_DIR / f"{name}.json"
        out.write_text(json.dumps(artefacts, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    artefacts = capture_serve(build_serve_synthetic())
    out = GOLDEN_DIR / "serve_synthetic.json"
    out.write_text(json.dumps(artefacts, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        payload = capture_bench_payload(tmp)
    out = GOLDEN_DIR / "bench_payload.json"
    out.write_text(payload)
    print(f"wrote {out}")


if __name__ == "__main__":
    regenerate()
