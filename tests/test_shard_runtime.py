"""Unit tests for the sharded engine's pieces: partitioners and routing
tables, the batch router and its two-phase claim resolution, worker
migration primitives, rebalance planning, coordinator cost accounting,
and the FOL* ``"xfer"`` request kind in the single-pipeline executor."""

import numpy as np
import pytest

from repro.errors import DeadlockError, ReproError
from repro.machine import CostModel, make_machine
from repro.runtime import (
    FixedBatcher,
    Request,
    StreamExecutor,
    StreamService,
    tuple_round,
)
from repro.runtime.metrics import BatchRecord
from repro.shard import (
    Migration,
    MigrationController,
    PartitionMap,
    Rebalancer,
    Router,
    RoutingTable,
    ShardCoordinator,
    ShardWorker,
    hash_partition,
    make_partition_map,
    range_partition,
)

FREE = CostModel.free()


# ----------------------------------------------------------------------
# partitioners and routing tables
# ----------------------------------------------------------------------
class TestPartitioners:
    def test_hash_partition_interleaves(self):
        owners = hash_partition(10, 3)
        assert owners.tolist() == [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]

    def test_range_partition_contiguous_and_balanced(self):
        owners = range_partition(10, 3)
        assert owners.tolist() == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]
        # every shard covered, sizes within one of each other
        counts = np.bincount(owners, minlength=3)
        assert counts.max() - counts.min() <= 1

    @pytest.mark.parametrize("fn", [hash_partition, range_partition])
    def test_every_index_owned(self, fn):
        owners = fn(23, 4)
        assert owners.size == 23
        assert set(owners.tolist()) == {0, 1, 2, 3}

    @pytest.mark.parametrize("fn", [hash_partition, range_partition])
    def test_bad_args_raise(self, fn):
        with pytest.raises(ReproError):
            fn(0, 2)
        with pytest.raises(ReproError):
            fn(5, 0)

    def test_more_shards_than_indices(self):
        owners = range_partition(2, 5)
        assert owners.size == 2
        assert owners.max() < 5


class TestRoutingTable:
    def test_move_retargets_and_counts(self):
        table = RoutingTable(hash_partition(8, 2), 2)
        assert table.owner_of(3) == 1
        old = table.move(3, 0)
        assert old == 1
        assert table.owner_of(3) == 0
        assert table.moves == 1
        table.move(3, 0)  # no-op move does not count
        assert table.moves == 1

    def test_move_to_unknown_shard_raises(self):
        table = RoutingTable(hash_partition(8, 2), 2)
        with pytest.raises(ReproError):
            table.move(0, 5)

    def test_owner_array_validated(self):
        with pytest.raises(ReproError):
            RoutingTable(np.array([0, 3], dtype=np.int64), 2)

    def test_traffic_decay_and_shard_load(self):
        table = RoutingTable(range_partition(4, 2), 2)
        table.record(0, 4.0)
        table.record(3, 2.0)
        assert table.shard_load().tolist() == [4.0, 2.0]
        table.decay(0.5)
        assert table.shard_load().tolist() == [2.0, 1.0]

    def test_fold_handles_out_of_range_keys(self):
        table = RoutingTable(hash_partition(7, 2), 2)
        assert table.fold(7) == 0
        assert table.fold(13) == 6

    def test_make_partition_map_rejects_unknown(self):
        with pytest.raises(ReproError):
            make_partition_map("round-robin", 2, table_size=7,
                               n_cells=4, key_space=8)

    def test_partition_map_domains(self):
        pm = make_partition_map("range", 3, table_size=9, n_cells=6,
                                key_space=12)
        assert pm.domain("hash").size == 9
        assert pm.domain("list").size == 6
        assert pm.domain("bst").size == 12
        with pytest.raises(ReproError):
            pm.domain("tree")


# ----------------------------------------------------------------------
# router
# ----------------------------------------------------------------------
def two_shard_router():
    pm = make_partition_map("range", 2, table_size=8, n_cells=8, key_space=8)
    return Router(pm)


class TestRouter:
    def test_single_address_kinds_follow_owner(self):
        router = two_shard_router()
        batch = [
            Request(rid=0, kind="hash", key=1),   # slot 1 -> shard 0
            Request(rid=1, kind="hash", key=13),  # slot 5 -> shard 1
            Request(rid=2, kind="list", key=6),   # cell 6 -> shard 1
            Request(rid=3, kind="bst", key=2),    # residue 2 -> shard 0
        ]
        per_shard, cross, _ = router.split(batch)
        assert [r.rid for r in per_shard[0]] == [0, 3]
        assert [r.rid for r in per_shard[1]] == [1, 2]
        assert cross == []

    def test_xfer_same_owner_stays_local(self):
        router = two_shard_router()
        per_shard, cross, _ = router.split(
            [Request(rid=0, kind="xfer", key=0, key2=3)]
        )
        assert len(per_shard[0]) == 1 and not cross

    def test_xfer_cross_owner_detected(self):
        router = two_shard_router()
        per_shard, cross, _ = router.split(
            [Request(rid=0, kind="xfer", key=0, key2=7)]
        )
        assert not per_shard[0] and not per_shard[1]
        assert len(cross) == 1
        assert (cross[0].src_shard, cross[0].dst_shard) == (0, 1)

    def test_carried_bst_lane_pinned_to_home(self):
        router = two_shard_router()
        req = Request(rid=0, kind="bst", key=1)  # residue 1 -> shard 0
        req.node = 99  # owns a node on shard 1's tree
        req.home = 1
        per_shard, _, _ = router.split([req])
        assert per_shard[1] == [req]

    def test_carried_hash_lane_reroutes_freely(self):
        router = two_shard_router()
        req = Request(rid=0, kind="hash", key=1)
        req.home = 1  # stale home must NOT pin a stateless lane
        per_shard, _, _ = router.split([req])
        assert per_shard[0] == [req]

    def test_resolve_claims_first_come(self):
        router = two_shard_router()
        units = [
            Request(rid=0, kind="xfer", key=0, key2=7),
            Request(rid=1, kind="xfer", key=7, key2=1),  # dst 7 taken
            Request(rid=2, kind="xfer", key=2, key2=6),
        ]
        _, cross, _ = router.split(units)
        winners, losers = router.resolve_claims(cross)
        assert [u.request.rid for u in winners] == [0, 2]
        assert [u.request.rid for u in losers] == [1]


# ----------------------------------------------------------------------
# worker migration primitives
# ----------------------------------------------------------------------
def small_worker(shard_id=0, hash_capacity=16, carryover=False):
    return ShardWorker(
        shard_id,
        table_size=8,
        hash_capacity=hash_capacity,
        bst_capacity=8,
        n_cells=4,
        carryover=carryover,
        cost_model=FREE,
    )


class TestWorkerMigration:
    def test_chain_export_import_preserves_multiset(self):
        src, dst = small_worker(0), small_worker(1)
        src.execute([Request(rid=i, kind="hash", key=k)
                     for i, k in enumerate([3, 11, 19])])  # slot 3 chain
        keys = src.executor.table.chain(3)
        assert sorted(keys) == [3, 11, 19]
        moved = src.export_chain(3)
        assert src.executor.table.chain(3) == []
        dst.import_chain(3, moved)
        assert sorted(dst.executor.table.chain(3)) == [3, 11, 19]

    def test_import_prepends_to_existing_chain(self):
        src, dst = small_worker(0), small_worker(1)
        dst.execute([Request(rid=0, kind="hash", key=3)])
        dst.import_chain(3, [11, 19])
        assert sorted(dst.executor.table.chain(3)) == [3, 11, 19]

    def test_can_import_chain_respects_capacity(self):
        dst = small_worker(hash_capacity=2)
        assert dst.can_import_chain(2)
        assert not dst.can_import_chain(3)

    def test_cell_export_import_moves_value(self):
        src, dst = small_worker(0), small_worker(1)
        src.execute([Request(rid=0, kind="list", key=2, delta=5)])
        assert src.export_cell(2) == 5
        assert src.cell_values()[2] == 0
        dst.import_cell(2, 5)
        assert dst.cell_values()[2] == 5

    def test_carried_lanes_stamped_with_home(self):
        worker = small_worker(3, carryover=True)
        result = worker.execute(
            [Request(rid=i, kind="hash", key=2) for i in range(3)]
        )
        assert result.carried  # duplicates of one slot must filter
        assert all(r.home == 3 for r in result.carried)


# ----------------------------------------------------------------------
# rebalancer
# ----------------------------------------------------------------------
def loaded_partition(loads):
    """2-shard range partition over 8 hash slots with given traffic."""
    pm = make_partition_map("range", 2, table_size=8, n_cells=8, key_space=8)
    for idx, weight in loads.items():
        pm.hash.record(idx, weight)
    return pm


class TestRebalancer:
    def test_balanced_load_plans_nothing(self):
        pm = loaded_partition({0: 5.0, 4: 5.0})
        assert Rebalancer(pm, cooldown=0).plan() == []

    def test_hot_shard_moves_to_cold(self):
        pm = loaded_partition({0: 6.0, 1: 6.0, 2: 6.0, 4: 1.0})
        moves = Rebalancer(pm, cooldown=0).plan()
        assert moves
        assert all(m.src == 0 and m.dst == 1 for m in moves)
        moved = sum(m.traffic for m in moves)
        assert moved <= (18.0 - 1.0) / 2  # never overshoots half the gap

    def test_single_dominant_index_not_moved(self):
        pm = loaded_partition({0: 100.0})
        assert Rebalancer(pm, cooldown=0).plan() == []

    def test_cooldown_spaces_plans(self):
        pm = loaded_partition({0: 6.0, 1: 6.0, 2: 6.0})
        reb = Rebalancer(pm, cooldown=2, decay=0.01)
        assert reb.plan()  # fires
        pm.hash.record(0, 6.0)
        pm.hash.record(1, 6.0)
        assert reb.plan() == []  # cooling down
        assert reb.plan() == []
        assert reb.plan()  # cooldown expired

    def test_plan_decays_traffic(self):
        pm = loaded_partition({0: 8.0})
        Rebalancer(pm, cooldown=0, decay=0.5).plan()
        assert pm.hash.traffic[0] == pytest.approx(4.0)

    def test_bad_config_raises(self):
        pm = loaded_partition({})
        with pytest.raises(ReproError):
            Rebalancer(pm, threshold=1.0)
        with pytest.raises(ReproError):
            Rebalancer(pm, decay=0.0)


# ----------------------------------------------------------------------
# coordinator accounting
# ----------------------------------------------------------------------
class TestCoordinator:
    def test_k1_matches_unsharded_cycles_exactly(self):
        """With one shard there is nothing to coordinate: the same batch
        must charge exactly the cycles the plain executor charges."""
        reqs = [Request(rid=i, kind="hash", key=i % 5) for i in range(20)]
        cm = CostModel.uniform()
        plain = StreamExecutor.for_workload(list(reqs), table_size=11,
                                            n_cells=8, cost_model=cm)
        r_plain = plain.execute([Request(rid=i, kind="hash", key=i % 5)
                                 for i in range(20)])
        coord = ShardCoordinator.for_workload(reqs, shards=1, table_size=11,
                                              n_cells=8, key_space=16,
                                              cost_model=cm)
        r_shard = coord.execute(reqs)
        assert r_shard.cycles == r_plain.cycles
        assert r_shard.rounds == r_plain.rounds

    def test_batch_cost_is_max_not_sum(self):
        reqs = [Request(rid=i, kind="hash", key=i) for i in range(32)]
        coord = ShardCoordinator.for_workload(reqs, shards=4, table_size=16,
                                              n_cells=8, key_space=32)
        result = coord.execute(reqs)
        assert result.shard_cycles and len(result.shard_cycles) == 4
        assert result.cycles == pytest.approx(max(result.shard_cycles))
        assert result.cycles < sum(result.shard_cycles)

    def test_cross_exchange_charged_from_cost_model(self):
        cm = CostModel.uniform()
        reqs = [Request(rid=0, kind="xfer", key=0, key2=7)]
        coord = ShardCoordinator.for_workload(
            reqs, shards=2, partitioner="range", table_size=8,
            n_cells=8, key_space=8, cost_model=cm,
        )
        result = coord.execute(reqs)
        assert result.cross_units == 1
        # 2 RTTs + claim payload (2 words) + commit payload (3 words)
        expected = 2 * cm.shard_claim_rtt + cm.shard_transfer_per_word * 5
        assert coord.exchange_cycles == pytest.approx(expected)
        assert result.cycles >= expected

    def test_cross_losers_carried_not_dropped(self):
        reqs = [
            Request(rid=0, kind="xfer", key=0, key2=7, delta=2),
            Request(rid=1, kind="xfer", key=7, key2=1, delta=3),
        ]
        coord = ShardCoordinator.for_workload(
            reqs, shards=2, partitioner="range", table_size=8,
            n_cells=8, key_space=8, cost_model=FREE,
        )
        result = coord.execute(reqs)
        assert len(result.completed) == 1
        assert len(result.carried) == 1
        assert result.carried[0].rid == 1
        # second batch retires the carried loser
        result2 = coord.execute(result.carried)
        assert [r.rid for r in result2.completed] == [1]
        values = coord.list_values()
        assert values[0] == -2 and values[7] == 2 - 3 and values[1] == 3

    def test_migration_skipped_when_dest_arena_full(self):
        reqs = [Request(rid=i, kind="hash", key=0) for i in range(4)]
        coord = ShardCoordinator.for_workload(
            reqs, shards=2, partitioner="range", table_size=8,
            n_cells=8, key_space=8, cost_model=FREE,
        )
        # exhaust shard 1's node arena so any chain import must fail
        nodes = coord.workers[1].executor.table.nodes
        nodes.alloc_many(nodes.remaining)
        coord.workers[0].execute(reqs)
        table = coord.router.partition.hash
        ctl = MigrationController(coord.router.partition)
        ctl.admit([Migration("hash", table.bin_index(0), 0, 1, 1.0)])
        rep = ctl.step(coord)
        assert rep.completed == 0 and rep.skipped == 1
        assert ctl.bins_skipped == 1 and ctl.pending == 0
        assert table.owner_of(0) == 0  # route intact

    def test_invalid_shard_count_raises(self):
        with pytest.raises(ReproError):
            ShardCoordinator.for_workload([], shards=0)


# ----------------------------------------------------------------------
# per-shard metrics plumbing
# ----------------------------------------------------------------------
class TestShardMetrics:
    def test_unsharded_records_have_no_shard_summary(self):
        reqs = [Request(rid=i, kind="hash", key=i) for i in range(10)]
        svc = StreamService.for_workload(reqs, table_size=11,
                                         cost_model=FREE)
        metrics = svc.run(reqs)
        assert metrics.shard_summary() == {}
        assert "shards" not in metrics.summary()

    def test_sharded_summary_and_tables(self):
        reqs = [Request(rid=i, kind="hash", key=i) for i in range(30)]
        coord = ShardCoordinator.for_workload(reqs, shards=3, table_size=16,
                                              n_cells=8, key_space=32,
                                              cost_model=FREE)
        svc = StreamService(coord, batcher=FixedBatcher(batch_size=10))
        metrics = svc.run(reqs)
        summary = metrics.summary()
        assert summary["shards"] == 3
        assert 0 < summary["mean_shard_occupancy"] <= 1.0
        assert summary["mean_shard_imbalance"] >= 1.0
        table = metrics.shard_table()
        assert "lanes/shard" in table and ":" in table

    def test_record_properties(self):
        rec = BatchRecord(index=0, size=8, carried_in=0, queue_depth=0,
                          rounds=1, multiplicity=1, filtered=0, completed=8,
                          cycles=10.0, shard_sizes=(8, 0, 0, 0),
                          shard_rounds=(1, 0, 0, 0))
        assert rec.shard_occupancy == 0.25
        assert rec.shard_imbalance == 4.0
        plain = BatchRecord(index=0, size=8, carried_in=0, queue_depth=0,
                            rounds=1, multiplicity=1, filtered=0,
                            completed=8, cycles=10.0)
        assert plain.shard_occupancy == 1.0
        assert plain.shard_imbalance == 1.0


# ----------------------------------------------------------------------
# the FOL* "xfer" kind in the single-pipeline executor
# ----------------------------------------------------------------------
def xfer_executor(n_cells=8):
    reqs = [Request(rid=0, kind="xfer", key=0, key2=1)]
    return StreamExecutor.for_workload(reqs, table_size=11, n_cells=n_cells,
                                       cost_model=FREE)


class TestXferKind:
    def test_requires_key2(self):
        with pytest.raises(ReproError):
            Request(rid=0, kind="xfer", key=1)

    def test_moves_value_between_cells(self):
        ex = xfer_executor()
        result = ex.execute([Request(rid=0, kind="xfer", key=0, key2=1,
                                     delta=4)])
        assert len(result.completed) == 1
        assert ex.list_values()[0] == -4
        assert ex.list_values()[1] == 4

    def test_self_transfer_is_noop(self):
        ex = xfer_executor()
        result = ex.execute([Request(rid=0, kind="xfer", key=2, key2=2,
                                     delta=9)])
        assert len(result.completed) == 1
        assert ex.list_values() == [0] * 8

    def test_out_of_range_cell_raises(self):
        ex = xfer_executor()
        with pytest.raises(ReproError):
            ex.execute([Request(rid=0, kind="xfer", key=0, key2=99)])

    def test_conflicting_tuples_carry_and_converge(self):
        ex = xfer_executor()
        batch = [
            Request(rid=0, kind="xfer", key=0, key2=1, delta=1),
            Request(rid=1, kind="xfer", key=1, key2=0, delta=2),
        ]
        result = ex.execute(batch)
        assert len(result.completed) == 1 and len(result.carried) == 1
        result2 = ex.execute(result.carried)
        assert len(result2.completed) == 1
        assert ex.list_values()[0] == -1 + 2
        assert ex.list_values()[1] == 1 - 2

    def test_tuple_round_scalar_tail_prevents_deadlock(self):
        """Crossing tuples (A: 0->1, B: 1->0) can eliminate each other
        in a pure vector round; the paper's scalar-tail remedy must
        still elect the last tuple."""
        vm = make_machine(4096, cost_model=FREE)
        a = np.array([10, 12], dtype=np.int64)
        b = np.array([12, 10], dtype=np.int64)
        labels = [np.array([1, 2], dtype=np.int64),
                  np.array([3, 4], dtype=np.int64)]
        winners, losers = tuple_round(vm, [a, b], labels, work_offset=100)
        assert winners.tolist() == [1]  # the scalar-tail tuple
        assert losers.tolist() == [0]

    def test_tuple_round_empty_is_safe(self):
        vm = make_machine(1024, cost_model=FREE)
        empty = np.empty(0, dtype=np.int64)
        winners, losers = tuple_round(vm, [empty, empty], [empty, empty])
        assert winners.size == 0 and losers.size == 0
