"""The workload registry: one spec per kind, every engine dispatches
through it, and the refactor is cycle-for-cycle identical to the
pre-registry engines.

Three layers of proof:

* **registry surface** — the built-in kinds and routing domains are
  registered with the layouts the engines rely on, and unknown kinds
  fail with a message naming the registry;
* **golden parity** — fixed-seed stream (closed and open loop), K=4
  shard, and fuzz-suite runs pinned to the exact cycle counts, batch
  counts and end-state hashes captured from the pre-registry engines.
  Any change to dispatch order, allocation order or rng draw order
  breaks these;
* **extensibility** — the ``"sort"`` kind, added as one spec module,
  runs end-to-end through the stream service, the K-shard engine, the
  differential oracle, the fuzzer and the CLI with no engine edits.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.audit import diff_stream_state, run_suite
from repro.engine import (
    EngineContext,
    domains,
    get_domain,
    get_spec,
    machine_words,
    registered_kinds,
    resolve_capacities,
    specs,
    stream_mix_kinds,
)
from repro.errors import ReproError
from repro.runtime import (
    AdaptiveBatcher,
    FixedBatcher,
    StreamService,
    closed_loop_workload,
    open_loop_workload,
)
from repro.shard import ShardCoordinator

# Legacy kind set: the four kinds that existed before the registry (and
# before "sort"); the golden values below were captured running exactly
# these through the pre-registry engines.
LEGACY_KINDS = ("hash", "bst", "list", "xfer")
TABLE_SIZE = 127
N_CELLS = 32
KEY_SPACE = 512


def state_hash(chains, inorder, values):
    """Canonical digest of hash/bst/list end state (order-insensitive
    where the contract is a multiset)."""
    canon = {
        "chains": {str(k): sorted(v) for k, v in sorted(chains.items())},
        "inorder": sorted(int(x) for x in inorder),
        "cells": [int(v) for v in values],
    }
    return hashlib.sha256(json.dumps(canon, sort_keys=True).encode()).hexdigest()


# ----------------------------------------------------------------------
# registry surface
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_kinds_registered(self):
        assert registered_kinds() == ("hash", "bst", "list", "xfer", "sort")

    def test_unknown_kind_names_registry(self):
        with pytest.raises(ReproError) as err:
            get_spec("btree")
        message = str(err.value)
        for kind in registered_kinds():
            assert kind in message

    def test_domains_and_sizes(self):
        ctx = EngineContext(
            table_size=TABLE_SIZE, n_cells=N_CELLS, key_space=KEY_SPACE
        )
        sizes = {name: dom.size(ctx) for name, dom in domains().items()}
        assert sizes == {
            "hash": TABLE_SIZE,
            "list": N_CELLS,
            "bst": KEY_SPACE,
            "sort": KEY_SPACE,
        }
        with pytest.raises(ReproError):
            get_domain("heap")

    def test_stream_mix_includes_sort(self):
        mix = stream_mix_kinds()
        assert "sort" in mix and set(LEGACY_KINDS) <= set(mix)

    def test_specs_cover_every_kind_once(self):
        names = [s.name for s in specs()]
        assert names == list(registered_kinds())
        assert get_spec("xfer").arity == 2
        assert all(get_spec(k).arity == 1 for k in ("hash", "bst", "list", "sort"))

    def test_resolve_capacities_accepts_legacy_kwargs(self):
        caps = resolve_capacities(
            None, {"hash_capacity": 77, "bst_capacity": 33}
        )
        assert caps["hash"] == 77 and caps["bst"] == 33
        # every registered kind gets a capacity
        assert set(caps) == set(registered_kinds())

    def test_machine_words_matches_legacy_layout(self):
        # Pre-registry sizing was 2T + 2H + (1 + 3B) + 6C + 4096 + 1;
        # the registry must reproduce it (plus sort's trailing words).
        ctx = EngineContext(table_size=101, n_cells=8, key_space=256)
        caps = {"hash": 10, "bst": 20, "list": 1, "xfer": 1, "sort": 5}
        legacy = 1 + (2 * 101 + 2 * 10) + (1 + 3 * 20) + 6 * 8 + 4096
        assert machine_words(caps, ctx) == legacy + (3 * 5 + 1)


# ----------------------------------------------------------------------
# golden parity: pinned pre-refactor cycles and end-state hashes
# ----------------------------------------------------------------------
class TestGoldenParity:
    def test_stream_closed_loop(self):
        rng = np.random.default_rng(123)
        reqs = closed_loop_workload(
            rng, 400, kinds=LEGACY_KINDS, skew=1.1,
            key_space=KEY_SPACE, n_cells=N_CELLS,
        )
        svc = StreamService.for_workload(
            reqs, batcher=FixedBatcher(batch_size=64),
            table_size=TABLE_SIZE, n_cells=N_CELLS,
        )
        metrics = svc.run(reqs)
        ex = svc.executor
        chains = {s: ks for s, ks in enumerate(ex.table.all_chains()) if ks}
        assert round(svc.now, 6) == 255847.5
        assert len(metrics.batches) == 40
        assert metrics.total_rounds == 152
        assert state_hash(chains, ex.tree.inorder(), ex.list_values()) == (
            "9e2135db213ea54c5aed42bed1d7403bc8ef5696a8c4b4bcc7ccf864d2f0e660"
        )

    def test_stream_open_loop(self):
        rng = np.random.default_rng(7)
        reqs = open_loop_workload(
            rng, 300, kinds=LEGACY_KINDS, skew=0.9,
            key_space=KEY_SPACE, n_cells=N_CELLS, mean_gap=30.0,
        )
        svc = StreamService.for_workload(
            reqs, batcher=AdaptiveBatcher(initial=32),
            table_size=TABLE_SIZE, n_cells=N_CELLS,
        )
        metrics = svc.run(reqs)
        ex = svc.executor
        chains = {s: ks for s, ks in enumerate(ex.table.all_chains()) if ks}
        assert round(svc.now, 6) == 175254.238609
        assert len(metrics.batches) == 18
        assert metrics.total_rounds == 104
        assert state_hash(chains, ex.tree.inorder(), ex.list_values()) == (
            "04a55941d7f9687f0f1e697f37ae282f006ed4205f94faf9d5f1ab6155b51c19"
        )

    def test_shard_k4(self):
        rng = np.random.default_rng(123)
        reqs = closed_loop_workload(
            rng, 400, kinds=LEGACY_KINDS, skew=1.1,
            key_space=KEY_SPACE, n_cells=N_CELLS,
        )
        coord = ShardCoordinator.for_workload(
            reqs, shards=4, partitioner="hash",
            table_size=TABLE_SIZE, n_cells=N_CELLS, key_space=KEY_SPACE,
        )
        svc = StreamService(coord, batcher=FixedBatcher(batch_size=64))
        metrics = svc.run(reqs)
        assert round(svc.now, 6) == 150108.3
        assert len(metrics.batches) == 34
        assert coord.total_cross == 204
        # The sharded end state merges to the same state as K=1 (same
        # workload, same hash as test_stream_closed_loop).
        assert state_hash(
            coord.chain_multisets(), coord.bst_inorder(), coord.list_values()
        ) == "9e2135db213ea54c5aed42bed1d7403bc8ef5696a8c4b4bcc7ccf864d2f0e660"

    def test_shard_k4_bins_equal_shards(self):
        """Degenerate bin layout: N bins = K shards with migration off
        composes to the identical owner map ((i % K) % K == i % K), so
        the two-level routing table must reproduce the pre-bin golden
        numbers bit for bit — same cycles, batches, cross units, state."""
        rng = np.random.default_rng(123)
        reqs = closed_loop_workload(
            rng, 400, kinds=LEGACY_KINDS, skew=1.1,
            key_space=KEY_SPACE, n_cells=N_CELLS,
        )
        coord = ShardCoordinator.for_workload(
            reqs, shards=4, partitioner="hash", bins=4,
            table_size=TABLE_SIZE, n_cells=N_CELLS, key_space=KEY_SPACE,
        )
        svc = StreamService(coord, batcher=FixedBatcher(batch_size=64))
        metrics = svc.run(reqs)
        assert round(svc.now, 6) == 150108.3
        assert len(metrics.batches) == 34
        assert coord.total_cross == 204
        assert state_hash(
            coord.chain_multisets(), coord.bst_inorder(), coord.list_values()
        ) == "9e2135db213ea54c5aed42bed1d7403bc8ef5696a8c4b4bcc7ccf864d2f0e660"

    @pytest.mark.parametrize(
        "suite,cases,lanes,expected",
        [
            ("core", 8, 48, [264, 2002, 134, 0, 26, 4, 0]),
            ("stream", 8, 40, [419, 630, 34, 59, 37, 11, 5]),
            ("shard", 6, 32, [353, 394, 21, 67, 32, 0, 0]),
        ],
    )
    def test_fuzz_suites(self, suite, cases, lanes, expected):
        # Pinned audit-counter totals from the pre-registry fuzzer.
        # Stream/shard mixes are pinned to the legacy kinds (the default
        # mix now also cycles "sort"); core derives its scenarios from
        # the registry, which reproduces the legacy scenario cycle.
        kw = {} if suite == "core" else {"kinds": LEGACY_KINDS}
        rep = run_suite(suite, seed=5, cases=cases, max_lanes=lanes, **kw)
        s = rep.stats
        assert rep.ok and rep.cases == cases
        assert [
            s.scatters, s.scatter_lanes, s.conflicts, s.rounds,
            s.claims, s.decompositions, s.tuple_decompositions,
        ] == expected


# ----------------------------------------------------------------------
# extensibility: "sort" rides every layer via its one spec module
# ----------------------------------------------------------------------
class TestSortEndToEnd:
    def test_stream_sort_only(self):
        rng = np.random.default_rng(11)
        reqs = closed_loop_workload(
            rng, 150, kinds=("sort",), skew=0.8, key_space=KEY_SPACE
        )
        svc = StreamService.for_workload(
            reqs, batcher=FixedBatcher(batch_size=32),
            table_size=TABLE_SIZE, n_cells=N_CELLS,
        )
        svc.run(reqs)
        store = svc.executor.kind_state["sort"]
        assert store.values() == sorted(r.key for r in reqs)
        assert diff_stream_state(
            svc.executor, reqs,
            table_size=TABLE_SIZE, n_cells=N_CELLS, key_space=KEY_SPACE,
        ) is None

    def test_stream_mixed_with_sort(self):
        rng = np.random.default_rng(12)
        reqs = closed_loop_workload(
            rng, 240, kinds=("hash", "sort", "xfer"), skew=1.0,
            key_space=KEY_SPACE, n_cells=N_CELLS,
        )
        svc = StreamService.for_workload(
            reqs, batcher=AdaptiveBatcher(initial=24),
            table_size=TABLE_SIZE, n_cells=N_CELLS,
        )
        svc.run(reqs)
        assert diff_stream_state(
            svc.executor, reqs,
            table_size=TABLE_SIZE, n_cells=N_CELLS, key_space=KEY_SPACE,
        ) is None

    def test_shard_sort_merges_sorted(self):
        rng = np.random.default_rng(13)
        reqs = closed_loop_workload(
            rng, 200, kinds=("sort", "list"), skew=0.6,
            key_space=KEY_SPACE, n_cells=N_CELLS,
        )
        coord = ShardCoordinator.for_workload(
            reqs, shards=4,
            table_size=TABLE_SIZE, n_cells=N_CELLS, key_space=KEY_SPACE,
        )
        svc = StreamService(coord, batcher=FixedBatcher(batch_size=32))
        svc.run(reqs)
        assert diff_stream_state(
            coord, reqs,
            table_size=TABLE_SIZE, n_cells=N_CELLS, key_space=KEY_SPACE,
        ) is None

    def test_sort_value_out_of_range_rejected(self):
        from repro.runtime.queue import Request

        with pytest.raises(ReproError):
            Request(rid=0, kind="sort", key=-3)


# ----------------------------------------------------------------------
# CLI: the workload mix is validated against the registry
# ----------------------------------------------------------------------
class TestCliMix:
    def test_unknown_kind_exits_2(self, capsys):
        assert main(["stream", "--requests", "10", "--kinds", "hash,wat"]) == 2
        err = capsys.readouterr().err
        assert "wat" in err and "sort" in err and "hash" in err

    def test_unknown_mix_kind_exits_2(self, capsys):
        assert main(["stream", "--requests", "10", "--mix", "wat=1"]) == 2
        assert "registered kinds" in capsys.readouterr().err

    def test_malformed_mix_exits_2(self, capsys):
        assert main(["stream", "--requests", "10", "--mix", "hash"]) == 2
        assert main(["stream", "--requests", "10", "--mix", "hash=x"]) == 2
        assert main(["stream", "--requests", "10", "--mix", "hash=-1"]) == 2

    def test_weighted_mix_runs(self, capsys):
        code = main([
            "stream", "--requests", "120", "--closed-loop",
            "--mix", "hash=2,sort=1", "--batch-size", "48",
        ])
        assert code == 0
        assert "kinds=hash=2,sort=1" in capsys.readouterr().out

    def test_weights_reach_workload(self):
        rng = np.random.default_rng(0)
        reqs = closed_loop_workload(
            rng, 300, kinds=("hash", "sort"), weights=(0.0, 1.0),
            key_space=KEY_SPACE,
        )
        assert all(r.kind == "sort" for r in reqs)
        with pytest.raises(ReproError):
            closed_loop_workload(
                rng, 10, kinds=("hash", "sort"), weights=(1.0,),
                key_space=KEY_SPACE,
            )


# ----------------------------------------------------------------------
# per-kind metrics ride the registry, not hard-coded scans
# ----------------------------------------------------------------------
class TestKindMetrics:
    def test_lanes_by_kind_counts_workload(self):
        rng = np.random.default_rng(3)
        reqs = closed_loop_workload(
            rng, 200, kinds=("hash", "bst", "sort"), skew=0.5,
            key_space=KEY_SPACE, n_cells=N_CELLS,
        )
        svc = StreamService.for_workload(
            reqs, batcher=FixedBatcher(batch_size=64),
            table_size=TABLE_SIZE, n_cells=N_CELLS,
        )
        metrics = svc.run(reqs)
        true_counts = {}
        for r in reqs:
            true_counts[r.kind] = true_counts.get(r.kind, 0) + 1
        by_kind = metrics.lanes_by_kind()
        assert set(by_kind) == set(true_counts)
        # Carried lanes ride more than one batch, so per-kind lane
        # totals are bounded below by the workload's composition.
        for kind, count in true_counts.items():
            assert by_kind[kind] >= count
        assert metrics.summary()["lanes_by_kind"] == by_kind
