"""Multi-tenant QoS: spec parsing, weighted admission, fairness, oracle.

Covers the ISSUE 9 tentpole end to end:

* the tenant/SLO spec grammar rejects malformed input with
  :class:`~repro.errors.ReproError` (the CLI's exit-2 path);
* :class:`~repro.runtime.qos.QoSPolicy` depth caps and weighted-fair
  dequeue on :class:`~repro.runtime.queue.BoundedQueue`;
* deadline-aware batch release through ``BatchPolicy.wake_time``;
* per-tenant conservation: ``admitted + rejected + blocked ==
  offered`` for every tenant under randomised offer/take interleaving;
* the correctness anchor — a QoS-enabled run's merged end state is
  identical to the one-shot scalar oracle, single-engine and K=4
  sharded, because admission reorders *service*, never semantics;
* worst-tenant-aware rebalance planning.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ReproError
from repro.runtime import (
    BoundedQueue,
    FixedBatcher,
    QoSPolicy,
    StreamService,
    TenantClass,
    apply_slos,
    jain_index,
    parse_slo,
    parse_tenants,
    tenant_workload,
)
from repro.runtime.queue import Request

TABLE_SIZE = 127
N_CELLS = 32
KEY_SPACE = 512


def req(rid=0, key=1, tenant="", slo=math.inf, arrival=0.0):
    r = Request(rid=rid, kind="hash", key=key, arrival=arrival)
    r.tenant = tenant
    r.slo = slo
    return r


# ----------------------------------------------------------------------
# spec grammar
# ----------------------------------------------------------------------
class TestParseTenants:
    def test_full_spec(self):
        a, b = parse_tenants("A=0.7:zipf1.2,B=0.3:uniform")
        assert (a.name, a.share, a.skew) == ("A", 0.7, 1.2)
        assert (b.name, b.share, b.skew) == ("B", 0.3, 0.0)
        assert math.isinf(a.slo) and math.isinf(b.slo)

    def test_dist_defaults_to_uniform(self):
        (t,) = parse_tenants("solo=2")
        assert t.skew == 0.0 and t.share == 2.0

    @pytest.mark.parametrize("spec", [
        "", "A", "A=", "=0.5", "A=lots", "A=0.7:gauss", "A=0.7:zipfx",
        "A=0.5,A=0.5", "A=-1", "A=0", "A=nan", "A=0.5:zipf-1", "A=0.5,,B=1",
    ])
    def test_malformed_rejected(self, spec):
        with pytest.raises(ReproError):
            parse_tenants(spec)


class TestParseSlo:
    def test_units(self):
        slos = parse_slo("A=50ms,B=0.2s,C=8000")
        assert slos["A"] == pytest.approx(0.05)
        assert slos["B"] == pytest.approx(0.2)
        assert slos["C"] == 8000.0

    def test_unit_pinning(self):
        assert parse_slo("A=50ms", unit="seconds")["A"] == pytest.approx(0.05)
        assert parse_slo("A=8000", unit="cycles")["A"] == 8000.0
        with pytest.raises(ReproError):
            parse_slo("A=8000", unit="seconds")  # bare number needs a suffix
        with pytest.raises(ReproError):
            parse_slo("A=50ms", unit="cycles")  # cycles take no suffix

    @pytest.mark.parametrize("spec", [
        "", "A", "A=", "A=soon", "A=-5", "A=0", "A=5ms,A=6ms", "A=inf",
    ])
    def test_malformed_rejected(self, spec):
        with pytest.raises(ReproError):
            parse_slo(spec)

    def test_apply_slos_merges_by_name(self):
        tenants = parse_tenants("A=0.7,B=0.3")
        merged = apply_slos(tenants, {"A": 50.0})
        assert merged[0].slo == 50.0 and math.isinf(merged[1].slo)
        with pytest.raises(ReproError):
            apply_slos(tenants, {"C": 1.0})  # unknown tenant name


class TestQoSPolicy:
    def test_depth_caps_follow_shares(self):
        policy = QoSPolicy(parse_tenants("A=0.7,B=0.3"), burst=0.5)
        assert policy.depth_cap("A", 128) == math.ceil(0.5 * 128 * 0.7)
        assert policy.depth_cap("B", 128) == math.ceil(0.5 * 128 * 0.3)
        # unknown tenants fall into the lightest class, never below 1
        assert policy.depth_cap("ghost", 128) == policy.depth_cap("B", 128)
        assert policy.depth_cap("B", 2) == 1

    def test_invalid_policy_rejected(self):
        with pytest.raises(ReproError):
            QoSPolicy(())
        with pytest.raises(ReproError):
            QoSPolicy(parse_tenants("A=1"), burst=0.0)
        with pytest.raises(ReproError):
            QoSPolicy(
                (TenantClass("A", 1.0), TenantClass("A", 2.0))
            )


class TestJainIndex:
    def test_known_values(self):
        assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jain_index([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)
        assert math.isnan(jain_index([]))
        assert math.isnan(jain_index([0.0, 0.0]))
        # non-finite entries are dropped, not propagated
        assert jain_index([1.0, float("nan"), 1.0]) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# the queue under a policy
# ----------------------------------------------------------------------
class TestQoSQueue:
    def test_depth_cap_binds_per_tenant(self):
        policy = QoSPolicy(parse_tenants("A=0.5,B=0.5"), burst=1.0)
        q = BoundedQueue(10, admission="reject", qos=policy)
        for i in range(10):
            q.offer(req(rid=i, tenant="A"), 0.0)
        # A's cap is ceil(10 * 0.5) = 5: half the queue stays reserved
        assert q.depth == 5
        assert q.tenant_stats["A"].admitted == 5
        assert q.tenant_stats["A"].rejected == 5
        # B's half is still open
        assert q.offer(req(rid=100, tenant="B"), 0.0)
        assert q.depth == 6

    def test_wfq_serves_by_weight(self):
        policy = QoSPolicy(parse_tenants("A=3,B=1"))
        q = BoundedQueue(64, admission="reject", qos=policy)
        for i in range(24):
            q.offer(req(rid=i, tenant="A"), 0.0)
            q.offer(req(rid=100 + i, tenant="B"), 0.0)
        first = q.take(16)
        by_tenant = {"A": 0, "B": 0}
        for r in first:
            by_tenant[r.tenant] += 1
        # 3:1 weights -> 12 A, 4 B in the first 16 (both backlogged)
        assert by_tenant == {"A": 12, "B": 4}
        # within a tenant, FIFO order is preserved
        a_rids = [r.rid for r in first if r.tenant == "A"]
        assert a_rids == sorted(a_rids)

    def test_wfq_is_work_conserving(self):
        policy = QoSPolicy(parse_tenants("A=3,B=1"))
        q = BoundedQueue(64, admission="reject", qos=policy)
        for i in range(8):
            q.offer(req(rid=i, tenant="B"), 0.0)
        # A idle: B gets the whole drain, nothing is held back
        assert len(q.take(8)) == 8
        assert q.depth == 0

    def test_untagged_requests_flow_without_policy(self):
        q = BoundedQueue(8, admission="reject")
        for i in range(5):
            q.offer(req(rid=i), 0.0)
        assert [r.rid for r in q.take(5)] == [0, 1, 2, 3, 4]
        assert q.tenant_stats == {}

    def test_earliest_deadline_gated_on_policy(self):
        q = BoundedQueue(8)
        q.offer(req(rid=0, slo=50.0), now=10.0)
        assert q.earliest_deadline() is None  # qos-only feature

        policy = QoSPolicy(parse_tenants("A=1,B=1"))
        qq = BoundedQueue(8, qos=policy)
        qq.offer(req(rid=0, tenant="A", slo=50.0), now=10.0)
        qq.offer(req(rid=1, tenant="B", slo=5.0), now=12.0)
        qq.offer(req(rid=2, tenant="B", slo=5.0), now=20.0)
        # min over per-tenant FIFO heads: A at 60, B's head at 17
        assert qq.earliest_deadline() == pytest.approx(17.0)
        # infinite-SLO heads never produce a deadline
        q3 = BoundedQueue(8, qos=policy)
        q3.offer(req(rid=0, tenant="A"), now=0.0)
        assert q3.earliest_deadline() is None

    def test_conservation_per_tenant_randomised(self):
        """admitted + rejected + blocked_offers == offered, per tenant
        and in aggregate, under random offer/take interleaving — both
        admission modes, policy on and off."""
        rng = np.random.default_rng(5)
        for admission in ("reject", "block"):
            for with_qos in (False, True):
                policy = (
                    QoSPolicy(parse_tenants("A=0.6,B=0.3,C=0.1"), burst=0.7)
                    if with_qos
                    else None
                )
                q = BoundedQueue(16, admission=admission, qos=policy)
                names = ("A", "B", "C")
                for i in range(600):
                    name = names[rng.integers(0, 3)]
                    q.offer(req(rid=i, tenant=name), 0.0)
                    if rng.random() < 0.3:
                        q.take(int(rng.integers(1, 6)))
                total = q.stats
                assert (
                    total.admitted + total.rejected + total.blocked_offers
                    == total.offered == 600
                )
                per = q.tenant_stats
                assert sum(s.offered for s in per.values()) == 600
                for s in per.values():
                    assert (
                        s.admitted + s.rejected + s.blocked_offers
                        == s.offered
                    )
                assert total.max_depth <= 16


# ----------------------------------------------------------------------
# deadline-aware release
# ----------------------------------------------------------------------
class TestDeadlineRelease:
    def test_wake_clipped_to_earliest_deadline(self):
        b = FixedBatcher(batch_size=64)
        # no deadline: wait for the next arrival as before
        assert b.wake_time(0.0, 0.0, 100.0) == 100.0
        # a deadline before the arrival releases the batch early
        assert b.wake_time(0.0, 0.0, 100.0, earliest_deadline=40.0) == 40.0
        # a deadline already blown releases immediately
        assert b.wake_time(10.0, 0.0, 100.0, earliest_deadline=5.0) == 10.0
        # a later deadline changes nothing
        assert b.wake_time(0.0, 0.0, 100.0, earliest_deadline=500.0) == 100.0

    def test_slo_margin_releases_earlier(self):
        b = FixedBatcher(batch_size=64)
        b.slo_margin = 15.0
        assert b.wake_time(0.0, 0.0, 100.0, earliest_deadline=40.0) == 25.0

    def test_stream_release_cuts_head_of_line_wait(self):
        """Open loop with a gap close to the SLO: without deadline
        release the fixed batcher sits on the head request until 32
        arrivals trickle in (~12,800 cycles past its 500-cycle budget);
        with QoS it must release small batches at the deadline."""
        tenants = apply_slos(parse_tenants("A=1"), {"A": 500.0})

        def run(with_qos):
            reqs = tenant_workload(
                np.random.default_rng(3), 40, tenants, kinds=("hash",),
                key_space=KEY_SPACE, n_cells=N_CELLS, mean_gap=400.0,
            )
            svc = StreamService.for_workload(
                reqs,
                batcher=FixedBatcher(batch_size=32),
                queue=BoundedQueue(
                    64, qos=QoSPolicy(tenants) if with_qos else None
                ),
                table_size=TABLE_SIZE, n_cells=N_CELLS,
            )
            return svc.run(reqs).summary()

        base, qos = run(False), run(True)
        assert base["completed"] == qos["completed"] == 40
        # the deadline hook releases many small batches instead of two
        # full ones, and the tail drops by roughly the gap-fill wait
        assert qos["batches"] > 3 * base["batches"]
        assert qos["p99_latency"] < base["p99_latency"] / 4


# ----------------------------------------------------------------------
# end-to-end: QoS service runs match the scalar oracle
# ----------------------------------------------------------------------
class TestQoSOracle:
    TENANTS = apply_slos(
        parse_tenants("A=0.7:zipf1.2,B=0.3:uniform"),
        {"A": 30_000.0, "B": 90_000.0},
    )

    def _workload(self, n, seed):
        rng = np.random.default_rng(seed)
        return tenant_workload(
            rng, n, self.TENANTS,
            kinds=("hash", "list", "sort"),
            key_space=KEY_SPACE, n_cells=N_CELLS,
        )

    def test_stream_state_matches_oracle(self):
        from repro.audit import diff_stream_state

        reqs = self._workload(300, seed=21)
        svc = StreamService.for_workload(
            reqs,
            batcher=FixedBatcher(batch_size=32),
            queue=BoundedQueue(
                64, admission="block",
                qos=QoSPolicy(self.TENANTS, burst=0.8),
            ),
            table_size=TABLE_SIZE, n_cells=N_CELLS,
        )
        m = svc.run(reqs)
        assert m.total_completed == 300  # block admission loses nothing
        assert diff_stream_state(
            svc.executor, reqs,
            table_size=TABLE_SIZE, n_cells=N_CELLS, key_space=KEY_SPACE,
        ) is None
        # the per-tenant ledger reconciles with the run
        cells = m.tenant_summary()
        assert sum(c["completed"] for c in cells.values()) == 300
        assert math.isfinite(m.jain_fairness())

    def test_sharded_state_matches_oracle(self):
        from repro.audit import diff_stream_state
        from repro.shard import ShardCoordinator

        reqs = self._workload(240, seed=22)
        coord = ShardCoordinator.for_workload(
            reqs, shards=4,
            table_size=TABLE_SIZE, n_cells=N_CELLS, key_space=KEY_SPACE,
        )
        svc = StreamService(
            coord,
            batcher=FixedBatcher(batch_size=32),
            queue=BoundedQueue(
                64, admission="block",
                qos=QoSPolicy(self.TENANTS, burst=0.8),
            ),
        )
        m = svc.run(reqs)
        assert m.total_completed == 240
        assert diff_stream_state(
            coord, reqs,
            table_size=TABLE_SIZE, n_cells=N_CELLS, key_space=KEY_SPACE,
        ) is None

    def test_reject_run_matches_oracle_over_completed(self):
        """Shedding must not corrupt state: the end state equals the
        oracle replay of exactly the completed (admitted) subset."""
        from repro.audit import diff_stream_state

        reqs = self._workload(300, seed=23)
        svc = StreamService.for_workload(
            reqs,
            batcher=FixedBatcher(batch_size=16),
            queue=BoundedQueue(
                24, admission="reject",
                qos=QoSPolicy(self.TENANTS, burst=0.6),
            ),
            table_size=TABLE_SIZE, n_cells=N_CELLS,
        )
        m = svc.run(reqs)
        done = [r for r in reqs if r.completed]
        assert 0 < len(done) < 300  # the scenario actually shed load
        assert m.total_completed == len(done)
        assert diff_stream_state(
            svc.executor, done,
            table_size=TABLE_SIZE, n_cells=N_CELLS, key_space=KEY_SPACE,
        ) is None


# ----------------------------------------------------------------------
# tenant workload generation
# ----------------------------------------------------------------------
class TestTenantWorkload:
    def test_tags_shares_and_determinism(self):
        tenants = parse_tenants("A=0.7:zipf1.2,B=0.3:uniform")
        reqs = tenant_workload(
            np.random.default_rng(9), 2000, tenants, key_space=KEY_SPACE
        )
        again = tenant_workload(
            np.random.default_rng(9), 2000, tenants, key_space=KEY_SPACE
        )
        assert [(r.tenant, r.key, r.kind) for r in reqs] == [
            (r.tenant, r.key, r.kind) for r in again
        ]
        n_a = sum(1 for r in reqs if r.tenant == "A")
        assert 0.6 < n_a / 2000 < 0.8  # share mix holds approximately
        # the hot tenant's keys concentrate; the uniform tenant's don't
        a_keys = [r.key for r in reqs if r.tenant == "A"]
        b_keys = [r.key for r in reqs if r.tenant == "B"]
        a_top = max(np.bincount(a_keys)) / len(a_keys)
        b_top = max(np.bincount(b_keys)) / len(b_keys)
        assert a_top > 5 * b_top

    def test_open_loop_arrivals_are_monotone(self):
        tenants = parse_tenants("A=1")
        reqs = tenant_workload(
            np.random.default_rng(1), 50, tenants, mean_gap=10.0,
            key_space=KEY_SPACE,
        )
        arrivals = [r.arrival for r in reqs]
        assert arrivals == sorted(arrivals) and arrivals[-1] > 0

    def test_bad_inputs_rejected(self):
        tenants = parse_tenants("A=1")
        with pytest.raises(ReproError):
            tenant_workload(np.random.default_rng(0), 0, tenants)
        with pytest.raises(ReproError):
            tenant_workload(np.random.default_rng(0), 10, ())


# ----------------------------------------------------------------------
# worst-tenant rebalance planning
# ----------------------------------------------------------------------
class TestWorstTenantRebalance:
    def _partition(self):
        from repro.shard.partition import PartitionMap, RoutingTable

        # 8 bins over 2 shards: bins 0-3 on shard 0, 4-7 on shard 1
        owners = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        return PartitionMap({"t": RoutingTable(owners, shards=2)})

    def test_unknown_objective_rejected(self):
        from repro.shard.rebalance import Rebalancer

        with pytest.raises(ReproError):
            Rebalancer(self._partition(), objective="roundrobin")

    def test_plans_the_worst_tenants_bins(self):
        from repro.shard.rebalance import Rebalancer

        part = self._partition()
        table = part.domain("t")
        # aggregate load is balanced: 40 per shard...
        for b in range(4):
            table.traffic[b] = 10.0
            table.traffic[4 + b] = 10.0
        # ...but tenant A's own traffic concentrates on shard 0 (spread
        # over a few bins — one mega-bin would trip the oscillation
        # guard, correctly, since moving it just relocates the hotspot)
        table.tenant_traffic["A"] = np.zeros(8)
        table.tenant_traffic["A"][1] = 3.0
        table.tenant_traffic["A"][2] = 3.5
        table.tenant_traffic["A"][3] = 2.0
        table.tenant_traffic["A"][5] = 0.5
        table.tenant_traffic["B"] = np.full(8, 4.0)

        balanced = Rebalancer(part, threshold=1.5, objective="imbalance")
        assert balanced.plan() == []  # total load looks fine

        part2 = self._partition()
        t2 = part2.domain("t")
        t2.traffic[:] = table.traffic
        t2.tenant_traffic["A"] = table.tenant_traffic["A"].copy()
        t2.tenant_traffic["B"] = table.tenant_traffic["B"].copy()
        planner = Rebalancer(part2, threshold=1.5, objective="worst-tenant")
        moves = planner.plan()
        assert moves, "the hidden per-tenant hotspot must trigger a plan"
        assert all(m.src == 0 and m.dst == 1 for m in moves)
        # ranked by *A's* per-bin heat, not the (flat) aggregate
        assert moves[0].bin == 2

    def test_falls_back_without_tenant_traffic(self):
        from repro.shard.rebalance import Rebalancer

        part = self._partition()
        table = part.domain("t")
        # aggregate hotspot on shard 0 (two bins, so a move can help),
        # with no tenant tags recorded at all
        table.traffic[0] = 30.0
        table.traffic[1] = 30.0
        planner = Rebalancer(part, threshold=1.5, objective="worst-tenant")
        moves = planner.plan()
        assert moves  # imbalance fallback planned
        assert all(m.src == 0 and m.dst == 1 for m in moves)
