"""Tests for the runtime invariant auditor, the differential oracles,
the fuzz harness and its shrinker, and the ``repro audit`` CLI."""

import numpy as np
import pytest

from repro.__main__ import main
from repro.audit import (
    InvariantAuditor,
    attach_everywhere,
    diff_bst,
    diff_hash,
    diff_list,
    diff_sorted,
    generate_keys,
    hash_reference,
    install_els_fault,
    run_core_case,
    run_shard_case,
    run_stream_case,
    run_suite,
    shrink_keys,
)
from repro.core.fol1 import fol1
from repro.errors import AuditError, DeadlockError
from repro.hashing.chained import vector_chained_insert
from repro.hashing.table import ChainedHashTable
from repro.machine.vm import make_machine
from repro.mem.arena import BumpAllocator


def fresh_table(n):
    vm = make_machine(8192)
    table = ChainedHashTable(BumpAllocator(vm.mem), 61, max(n, 1))
    return vm, table


class TestAuditorHooks:
    def test_clean_run_populates_counters(self):
        vm, table = fresh_table(64)
        auditor = attach_everywhere(vm, None)
        keys = np.arange(64, dtype=np.int64) % 7  # heavy sharing
        vector_chained_insert(vm, table, keys)
        assert auditor.stats.scatters > 0
        assert auditor.stats.conflicts > 0
        assert auditor.stats.decompositions == 1
        assert auditor.conflict_log  # conflicting lane sets were recorded
        rec = auditor.conflict_log[0]
        assert len(rec.lanes) == len(rec.values) >= 2
        assert rec.survivor in rec.values  # ELS held

    def test_detach_restores_silence(self):
        vm, table = fresh_table(8)
        auditor = attach_everywhere(vm, None)
        vm.attach_audit(None)
        vector_chained_insert(vm, table, np.arange(8, dtype=np.int64))
        assert auditor.stats.scatters == 0

    def test_amalgam_scatter_raises(self):
        vm = make_machine(1024)
        auditor = InvariantAuditor()
        addrs = np.array([5, 5, 9], dtype=np.int64)
        values = np.array([1, 2, 3], dtype=np.int64)
        vm.mem.words[5] = 2
        vm.mem.words[9] = 3
        auditor.on_scatter(addrs, values, vm.mem)  # a lane's word survived
        vm.mem.words[5] = 999  # amalgam: no lane wrote this
        with pytest.raises(AuditError, match="amalgam"):
            auditor.on_scatter(addrs, values, vm.mem)

    def test_round_with_duplicate_winners_raises(self):
        auditor = InvariantAuditor()
        addrs = np.array([7, 7, 8], dtype=np.int64)
        with pytest.raises(AuditError, match="two winners"):
            auditor.on_round(
                addrs, np.array([0, 1, 2]), np.array([], dtype=np.int64)
            )

    def test_round_partition_checked(self):
        auditor = InvariantAuditor()
        addrs = np.array([7, 8], dtype=np.int64)
        with pytest.raises(AuditError, match="not a partition"):
            auditor.on_round(addrs, np.array([0]), np.array([], dtype=np.int64))

    def test_claim_without_attempt_raises(self):
        auditor = InvariantAuditor()
        addrs = np.array([3, 4], dtype=np.int64)
        with pytest.raises(AuditError, match="never attempted"):
            auditor.on_claim(
                addrs,
                np.array([True, False]),
                np.array([False, True]),
            )

    def test_partial_decomposition_audited(self):
        vm = make_machine(4096)
        auditor = attach_everywhere(vm, None)
        v = np.array([100, 200, 100, 300, 100], dtype=np.int64)
        dec = fol1(vm, v, stop_after=1)
        assert dec.m == 1
        assert auditor.stats.decompositions == 1


class TestCycleNeutrality:
    def test_auditing_changes_no_cycles(self):
        # The acceptance criterion behind "auditor off by default adds no
        # measurable cycles": audit reads are uncharged peeks, so the
        # simulated cycle count is bit-identical with auditing on or off.
        keys = generate_keys(np.random.default_rng(11), "dup_heavy", 200)
        totals = []
        for audited in (False, True):
            vm, table = fresh_table(keys.size)
            if audited:
                attach_everywhere(vm, None)
            vector_chained_insert(vm, table, keys)
            totals.append(vm.counter.total)
        assert totals[0] == totals[1]


class TestElsFaultInjection:
    @staticmethod
    def _insert_fails(keys):
        vm, table = fresh_table(len(keys))
        attach_everywhere(vm, None)
        install_els_fault(vm.mem)
        try:
            vector_chained_insert(
                vm, table, np.asarray(keys, dtype=np.int64)
            )
        except AuditError:
            return True
        return False

    def test_injected_violation_caught_and_shrunk(self):
        # The end-to-end acceptance path: arm the failpoint, watch the
        # auditor catch the amalgam on the very scatter it corrupts,
        # and shrink the provoking input to a tiny reproducer.
        keys = generate_keys(np.random.default_rng(5), "dup_heavy", 48)
        assert self._insert_fails(keys)
        shrunk = shrink_keys(self._insert_fails, keys)
        assert len(shrunk) <= 8
        assert self._insert_fails(shrunk)

    def test_fault_is_one_shot_and_disarms(self):
        # Without the auditor the amalgam still breaks FOL1 (no label
        # survives, so the defensive deadlock check trips) — but only
        # the auditor names the ELS violation on the exact scatter.
        vm, table = fresh_table(16)
        install_els_fault(vm.mem)
        keys = np.zeros(16, dtype=np.int64)  # all-same: conflict for sure
        with pytest.raises(DeadlockError):
            vector_chained_insert(vm, table, keys)
        assert vm.mem._scatter_fault is None  # disarmed after firing

    def test_conflict_free_scatter_never_triggers(self):
        vm, table = fresh_table(8)
        attach_everywhere(vm, None)
        install_els_fault(vm.mem)
        keys = np.arange(8, dtype=np.int64)  # distinct slots: no conflict
        vector_chained_insert(vm, table, keys)  # must not raise


class TestOracles:
    def test_hash_reference_and_diff(self):
        keys = [3, 64, 3, 7]
        expected = hash_reference(keys, 61)
        assert expected[3] == [3, 3, 64]  # 64 % 61 == 3
        assert diff_hash(expected, keys, 61) is None
        broken = {3: [3, 64], 7: [7]}  # dropped a duplicate
        d = diff_hash(broken, keys, 61)
        assert d is not None and "slot 3" in d.where

    def test_diff_list_names_first_cell(self):
        # A bump of +5 on cell 0, then a transfer of 2 from cell 0 to
        # cell 2 — as the (cell, delta) pairs the specs report.
        deltas = [(0, 5), (0, -2), (2, 2)]
        assert diff_list([3, 0, 2], 3, deltas) is None
        d = diff_list([3, 1, 2], 3, deltas)
        assert d is not None and d.where == "cell 1"

    def test_diff_bst_and_sorted(self):
        assert diff_bst([1, 2, 2, 5], [2, 5, 1, 2]) is None
        d = diff_bst([1, 2, 5], [2, 5, 1, 2])
        assert d is not None and d.where == "inorder index 2"
        d = diff_bst([1, 2, 2, 5, 9], [2, 5, 1, 2])
        assert d is not None and "length" in d.where
        assert diff_sorted([1, 2, 3], [3, 1, 2]) is None
        assert diff_sorted([1, 3, 2], [3, 1, 2]) is not None


class TestFuzzSuites:
    def test_patterns_shape(self):
        rng = np.random.default_rng(0)
        same = generate_keys(rng, "all_same", 10)
        assert len(set(same.tolist())) == 1
        near = generate_keys(rng, "near_unique", 10)
        assert len(set(near.tolist())) == 9  # one planted duplicate

    def test_core_suite_clean(self):
        report = run_suite("core", seed=3, cases=12)
        assert report.ok and report.cases == 12
        assert report.stats.scatters > 0

    def test_stream_suite_clean(self):
        report = run_suite("stream", seed=3, cases=6, max_lanes=40)
        assert report.ok
        assert report.stats.rounds > 0

    def test_shard_suite_clean(self):
        report = run_suite("shard", seed=3, cases=4, max_lanes=40)
        assert report.ok
        assert report.stats.claims > 0

    def test_case_runners_accept_explicit_keys(self):
        assert run_core_case("hash", [0, 0, 0]) is None
        assert run_core_case("sort", [5, 1, 5]) is None
        assert run_stream_case("carry", [3, 3, 4, 9]) is None
        assert run_shard_case("static", [3, 3, 4, 9]) is None

    def test_shrinker_minimises(self):
        # Property: fails iff at least two 7s present.  Minimal: [7, 7].
        pred = lambda ks: ks.count(7) >= 2
        assert shrink_keys(pred, [1, 7, 3, 7, 7, 2, 7]) == [7, 7]


class TestAuditCli:
    def test_audit_cli_clean_exit(self):
        assert main(["audit", "--suite", "core", "--seed", "1",
                     "--cases", "5"]) == 0

    def test_audit_cli_rejects_bad_cases(self):
        assert main(["audit", "--cases", "0"]) == 2
        assert main(["audit", "--suite", "nope"]) == 2

    def test_stream_cli_validation(self):
        assert main(["stream", "--deadline", "0"]) == 2
        assert main(["stream", "--requests", "-5"]) == 2
        assert main(["stream", "--mean-gap", "0"]) == 2
        assert main(["stream", "--skew", "99"]) == 2
