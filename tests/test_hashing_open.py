"""Tests for open-addressing multiple hashing (Figure 8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TableFullError
from repro.hashing import (
    OpenHashTable,
    UNENTERED,
    get_probe,
    optimized_scalar,
    optimized_vector,
    original_vector,
    scalar_open_insert,
    scalar_open_lookup,
    vector_open_insert,
)
from repro.machine import CONFLICT_POLICIES, CostModel, Memory, ScalarProcessor, VectorMachine
from repro.mem import BumpAllocator


def build(size=67, seed=0):
    vm = VectorMachine(Memory(size + 64, cost_model=CostModel.free(), seed=seed))
    table = OpenHashTable(BumpAllocator(vm.mem), size)
    return vm, table


class TestTable:
    def test_initialised_to_unentered(self):
        _, t = build()
        assert (t.entries() == UNENTERED).all()
        assert t.load_factor() == 0.0

    def test_size_must_exceed_32(self, alloc):
        with pytest.raises(ValueError):
            OpenHashTable(alloc, 32)


class TestVectorInsert:
    def test_no_collisions(self):
        vm, t = build()
        keys = np.array([1, 2, 3, 4])  # all hash to distinct slots
        rounds = vector_open_insert(vm, t, keys)
        assert rounds == 1
        assert np.array_equal(np.sort(t.stored_keys()), keys)

    def test_colliding_keys_all_enter(self):
        vm, t = build(size=67)
        keys = np.array([5, 72, 139, 206])  # all ≡ 5 mod 67
        vector_open_insert(vm, t, keys)
        assert np.array_equal(np.sort(t.stored_keys()), np.sort(keys))

    def test_paper_keys_353_911(self):
        """The Figure 4 example keys collide (both hash to 5 mod size
        for a suitable size) and must both enter."""
        vm, t = build(size=58)  # 353 % 58 = 5, 911 % 58 = 41... use mod value
        keys = np.array([353, 911])
        vector_open_insert(vm, t, keys)
        assert np.array_equal(np.sort(t.stored_keys()), [353, 911])

    def test_empty_key_vector(self):
        vm, t = build()
        assert vector_open_insert(vm, t, np.array([], dtype=np.int64)) == 0

    def test_duplicate_keys_rejected(self):
        vm, t = build()
        with pytest.raises(ValueError):
            vector_open_insert(vm, t, np.array([3, 3]))

    def test_negative_keys_rejected(self):
        vm, t = build()
        with pytest.raises(ValueError):
            vector_open_insert(vm, t, np.array([-1, 2]))

    def test_more_keys_than_slots_rejected(self):
        vm, t = build(size=33)
        with pytest.raises(TableFullError):
            vector_open_insert(vm, t, np.arange(34, dtype=np.int64))

    def test_completely_full_table(self):
        vm, t = build(size=67)
        keys = np.arange(0, 67, dtype=np.int64) * 67 + 3  # all ≡ 3 (mod 67)
        vector_open_insert(vm, t, keys)
        assert t.load_factor() == 1.0
        assert np.array_equal(np.sort(t.stored_keys()), np.sort(keys))

    @pytest.mark.parametrize("policy", CONFLICT_POLICIES)
    def test_policies(self, policy):
        vm, t = build(seed=5)
        rng = np.random.default_rng(1)
        keys = rng.choice(10_000, size=40, replace=False)
        vector_open_insert(vm, t, keys, policy=policy)
        assert np.array_equal(np.sort(t.stored_keys()), np.sort(keys))

    def test_original_probe_also_correct(self):
        vm, t = build(seed=2)
        rng = np.random.default_rng(2)
        keys = rng.choice(10_000, size=50, replace=False)
        vector_open_insert(vm, t, keys, probe=original_vector)
        assert np.array_equal(np.sort(t.stored_keys()), np.sort(keys))


class TestScalarVectorAgreement:
    @settings(max_examples=30, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 100_000), min_size=0, max_size=50,
                      unique=True),
        seed=st.integers(0, 5),
        probe=st.sampled_from(["original", "optimized"]),
    )
    def test_same_key_multiset(self, keys, seed, probe):
        keys = np.asarray(keys, dtype=np.int64)
        sprobe, vprobe = get_probe(probe)

        vm, vt = build(seed=seed)
        vector_open_insert(vm, vt, keys, probe=vprobe)

        sm = Memory(67 + 64, cost_model=CostModel.free(), seed=seed)
        st_ = OpenHashTable(BumpAllocator(sm), 67)
        scalar_open_insert(ScalarProcessor(sm), st_, keys, probe=sprobe)

        assert np.array_equal(np.sort(vt.stored_keys()), np.sort(st_.stored_keys()))

    @settings(max_examples=20, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 100_000), min_size=1, max_size=40,
                      unique=True),
        seed=st.integers(0, 5),
    )
    def test_every_key_findable_by_probe_sequence(self, keys, seed):
        """Lookup must succeed for every entered key: the table the
        vector algorithm builds is a *valid* open-addressing table."""
        keys = np.asarray(keys, dtype=np.int64)
        vm, t = build(seed=seed)
        vector_open_insert(vm, t, keys)
        sp = ScalarProcessor(vm.mem)
        for k in keys:
            slot = scalar_open_lookup(sp, t, int(k), probe=optimized_scalar)
            assert slot is not None
            assert t.memory.peek(t.base + slot) == k


class TestLookup:
    def test_absent_key(self):
        vm, t = build()
        vector_open_insert(vm, t, np.array([5, 6]))
        sp = ScalarProcessor(vm.mem)
        assert scalar_open_lookup(sp, t, 999) is None

    def test_lookup_in_full_table_terminates(self):
        vm, t = build(size=67)
        keys = np.arange(67, dtype=np.int64)
        vector_open_insert(vm, t, keys)
        sp = ScalarProcessor(vm.mem)
        assert scalar_open_lookup(sp, t, 1_000_003) is None


class TestProbeStrategies:
    def test_optimized_breaks_collision_groups(self):
        """Keys that collide at the same slot scatter on the next probe
        iff their low-5 bits differ — the whole point of §4.1's fix."""
        vm, _ = build()
        h = np.array([5, 5, 5], dtype=np.int64)
        keys = np.array([64, 65, 66], dtype=np.int64)  # low bits 0,1,2
        nxt = optimized_vector(vm, h, keys, 67)
        assert np.unique(nxt).size == 3

    def test_original_keeps_collision_groups_together(self):
        vm, _ = build()
        h = np.array([5, 5, 5], dtype=np.int64)
        keys = np.array([64, 65, 66], dtype=np.int64)
        nxt = original_vector(vm, h, keys, 67)
        assert np.unique(nxt).size == 1

    def test_get_probe_unknown(self):
        with pytest.raises(KeyError):
            get_probe("nope")


class TestUnfusedVariant:
    """The §3.2 simplification ablation: generic FOL1 with a separate
    work area must match Figure 8's fused result, at higher cost."""

    def _machines(self, size=67, seed=0, cost=CostModel.free()):
        vm = VectorMachine(Memory(2 * size + 128, cost_model=cost, seed=seed))
        alloc = BumpAllocator(vm.mem)
        table = OpenHashTable(alloc, size)
        work = alloc.alloc(size, "fol_work")
        return vm, table, work

    def test_same_key_multiset_as_fused(self):
        from repro.hashing.open_addressing import vector_open_insert_unfused
        rng = np.random.default_rng(1)
        keys = rng.choice(10_000, size=40, replace=False)
        vm, t, work = self._machines(seed=4)
        vector_open_insert_unfused(vm, t, keys, work)
        assert np.array_equal(np.sort(t.stored_keys()), np.sort(keys))
        for k in keys:
            sp = ScalarProcessor(vm.mem)
            assert scalar_open_lookup(sp, t, int(k)) is not None

    def test_empty_and_errors(self):
        from repro.hashing.open_addressing import vector_open_insert_unfused
        vm, t, work = self._machines()
        assert vector_open_insert_unfused(vm, t, np.array([], dtype=np.int64), work) == 0
        with pytest.raises(ValueError):
            vector_open_insert_unfused(vm, t, np.array([3, 3]), work)

    def test_full_table(self):
        from repro.hashing.open_addressing import vector_open_insert_unfused
        vm, t, work = self._machines(size=67)
        keys = np.arange(0, 67, dtype=np.int64) * 67 + 3  # all collide
        vector_open_insert_unfused(vm, t, keys, work)
        assert t.load_factor() == 1.0

    def test_fused_is_cheaper(self):
        """The point of the §3.2 simplification, in cycles."""
        from repro.hashing.open_addressing import vector_open_insert_unfused
        rng = np.random.default_rng(2)
        keys = rng.choice(100_000, size=260, replace=False)

        vm1, t1, work = self._machines(size=521, seed=3, cost=CostModel.s810())
        vector_open_insert_unfused(vm1, t1, keys, work)

        vm2, t2, _ = self._machines(size=521, seed=3, cost=CostModel.s810())
        vector_open_insert(vm2, t2, keys)
        assert vm2.counter.total < vm1.counter.total
