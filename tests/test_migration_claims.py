"""Migration ∩ two-phase claim/commit: a bin handoff racing an
in-flight cross-shard FOL* transfer must neither drop nor double-apply
the claim.

The hazard: an ``"xfer"`` tuple routed to a bin that is mid-handoff.
If it executed against the moving bin, its claim could land on the old
owner while the state lands on the new one (a dropped update), or
replay against both (a double-apply).  The engine's defence is
*parking* — the router diverts any request touching an in-flight bin
onto the carryover path *before* the claim phase sees it, and the lane
replays on the new owner once the bin flips.  These tests drive that
window deterministically:

* fluid pacing with ``indices_per_gap=1`` holds a bin in flight across
  several micro-batches while an xfer keeps arriving (parked, parked,
  …, replayed);
* a claim *loser* carried out of a genuine cross-shard claim round is
  replayed across a bin flip (its destination cell changes owner while
  it waits), and must apply exactly once on the new owner;
* the in-process :class:`ShardCoordinator` and the multi-OS-process
  :class:`ProcessCluster` run the same schedules (the cluster's mover
  ships state over mp queues — query/export/import — instead of direct
  memory access).

Every test closes by checking the merged state against one-shot FOL1
on a single pipeline (the equivalence oracle), so exactly-once is
verified on the *values*, not just the completion counts.
"""

import pytest

from repro.audit.oracle import diff_stream_state
from repro.machine import CostModel
from repro.runtime import Request, StreamExecutor
from repro.shard import (
    Migration,
    MigrationController,
    ShardCoordinator,
)

FREE = CostModel.free()
TABLE_SIZE = 11
N_CELLS = 8
KEY_SPACE = 13
SHARDS = 2
BINS = 2  # 2 bins over 8 cells -> 4 cells per bin, multi-gap fluid drain


def fresh(requests):
    """Re-materialise requests (execution mutates group/home/arrival)."""
    return [
        Request(rid=r.rid, kind=r.kind, key=r.key, key2=r.key2,
                delta=r.delta)
        for r in requests
    ]


def one_shot_state(requests):
    """Reference: the stream as one batch of in-batch-retry FOL1."""
    reqs = fresh(requests)
    executor = StreamExecutor.for_workload(
        reqs, table_size=TABLE_SIZE, n_cells=N_CELLS,
        carryover=False, cost_model=FREE,
    )
    result = executor.execute(reqs)
    assert not result.carried
    chains = {
        slot: sorted(executor.table.chain(slot))
        for slot in range(TABLE_SIZE)
        if executor.table.chain(slot)
    }
    return chains, executor.list_values()


def build_coordinator(all_requests, *, strategy, indices_per_gap=1):
    """K=2 coordinator with migration under manual control: the
    rebalancer's threshold is unreachable (no organic plans) and the
    test admits bin moves directly to a controller with the requested
    pacing."""
    coord = ShardCoordinator.for_workload(
        fresh(all_requests),
        shards=SHARDS,
        partitioner="hash",
        rebalance=True,
        rebalance_threshold=1e9,
        table_size=TABLE_SIZE,
        n_cells=N_CELLS,
        key_space=KEY_SPACE,
        cost_model=FREE,
        bins=BINS,
    )
    ctl = MigrationController(
        coord.router.partition,
        strategy=strategy,
        indices_per_gap=indices_per_gap,
    )
    coord.controller = ctl
    coord.router.controller = ctl
    return coord, ctl


PRIME = [
    Request(rid=100 + c, kind="list", key=c, delta=10)
    for c in range(N_CELLS)
]
FILLERS = [Request(rid=200 + i, kind="hash", key=i, delta=1)
           for i in range(8)]


class TestInProcessRaces:
    def test_xfer_parked_through_fluid_handoff_applies_once(self):
        """An xfer arriving while its source cell's bin is mid-handoff
        parks (never claims), keeps parking while the drain continues,
        and applies exactly once on the new owner after the flip."""
        xfer = Request(rid=0, kind="xfer", key=0, key2=1, delta=3)
        coord, ctl = build_coordinator(
            PRIME + FILLERS + [xfer], strategy="fluid", indices_per_gap=1
        )
        applied = []

        r = coord.execute(fresh(PRIME))
        applied.extend(r.completed)
        assert len(r.completed) == len(PRIME)

        # Bin 0 of the list domain = cells {0, 2, 4, 6}, owned by shard
        # 0 under the 2-bin hash layout; 4 fluid gaps to drain.
        table = coord.router.partition.domain("list")
        assert sorted(table.indices_in_bin(0)) == [0, 2, 4, 6]
        assert table.bin_owner_of(0) == 0
        ctl.admit([Migration("list", 0, 0, 1, 1.0)])
        assert ctl.pending == 1

        live = fresh([xfer])
        fillers = fresh(FILLERS)
        r = coord.execute(live + fillers[:2])
        applied.extend(r.completed)
        # Parked, not claimed: the xfer rode the carryover path and the
        # cells are untouched while the bin is split across shards.
        assert r.parked == 1
        assert live[0] in r.carried
        assert live[0] not in r.completed
        assert coord.list_values()[0] == 10 and coord.list_values()[1] == 10
        assert ctl.pending == 1  # one index shipped, three to go

        # Re-offering the parked lane while the drain continues parks
        # it again — it can never slip in mid-handoff.
        gaps = 0
        while ctl.pending:
            r = coord.execute([live[0], fillers[2 + gaps]])
            applied.extend(r.completed)
            assert live[0] not in r.completed
            gaps += 1
            assert gaps < 8, "fluid drain failed to finish"
        assert table.bin_owner_of(0) == 1
        assert ctl.parked_requests >= 3

        # Replay on the new owner: both cells now live on shard 1, so
        # the transfer is shard-local and must complete.
        r = coord.execute([live[0]])
        applied.extend(r.completed)
        assert live[0] in r.completed

        rids = [req.rid for req in applied]
        assert sorted(rids) == sorted(set(rids)), "a lane applied twice"
        assert xfer.rid in rids
        chains, cells = one_shot_state(applied)
        assert coord.chain_multisets() == chains
        assert coord.list_values() == cells
        assert cells[0] == 7 and cells[1] == 13

    def test_claim_loser_replays_exactly_once_across_flip(self):
        """A genuine claim *loser* (it lost a first-come claim round to
        a competing cross-shard xfer) is carried, then its destination
        cell's bin flips owner before the replay.  The replay must park
        during the handoff and apply exactly once afterwards."""
        xfer_a = Request(rid=0, kind="xfer", key=0, key2=1, delta=3)
        xfer_b = Request(rid=1, kind="xfer", key=1, key2=2, delta=5)
        coord, ctl = build_coordinator(
            PRIME + FILLERS + [xfer_a, xfer_b], strategy="all-at-once"
        )
        applied = []

        r = coord.execute(fresh(PRIME))
        applied.extend(r.completed)

        # Both xfers are cross-shard; they contend on cell 1, so A
        # (earlier in batch order) wins both claims and B is carried.
        live_a = fresh([xfer_a])[0]
        live_b = fresh([xfer_b])[0]
        r = coord.execute([live_a, live_b])
        applied.extend(r.completed)
        assert r.completed == [live_a]
        assert live_b in r.carried
        assert coord.total_cross == 2
        values = coord.list_values()
        assert values[0] == 7 and values[1] == 13 and values[2] == 10

        # Flip the bin holding B's destination cell (2) mid-wait.
        table = coord.router.partition.domain("list")
        ctl.admit([Migration("list", 0, 0, 1, 1.0)])
        r = coord.execute([live_b] + fresh(FILLERS)[:1])
        applied.extend(r.completed)
        assert r.parked == 1 and live_b in r.carried
        # all-at-once: the whole bin landed in that gap's step.
        assert ctl.pending == 0
        assert table.bin_owner_of(0) == 1

        r = coord.execute([live_b])
        applied.extend(r.completed)
        assert live_b in r.completed

        rids = [req.rid for req in applied]
        assert sorted(rids) == sorted(set(rids)), "a lane applied twice"
        chains, cells = one_shot_state(applied)
        assert coord.chain_multisets() == chains
        assert coord.list_values() == cells
        assert cells[0] == 7 and cells[1] == 8 and cells[2] == 15

    @pytest.mark.parametrize("strategy", ["all-at-once", "batched"])
    def test_whole_bin_strategies_flip_within_one_gap(self, strategy):
        """all-at-once and batched move whole bins per gap, so a parked
        xfer replays successfully on the very next batch."""
        xfer = Request(rid=0, kind="xfer", key=0, key2=1, delta=3)
        coord, ctl = build_coordinator(
            PRIME + FILLERS + [xfer], strategy=strategy
        )
        applied = []
        r = coord.execute(fresh(PRIME))
        applied.extend(r.completed)
        ctl.admit([Migration("list", 0, 0, 1, 1.0)])
        live = fresh([xfer])[0]
        r = coord.execute([live] + fresh(FILLERS)[:1])
        applied.extend(r.completed)
        assert r.parked == 1 and ctl.pending == 0
        r = coord.execute([live])
        applied.extend(r.completed)
        assert live in r.completed
        chains, cells = one_shot_state(applied)
        assert coord.chain_multisets() == chains
        assert coord.list_values() == cells


class TestProcessClusterRaces:
    """The same handoff window over real OS processes: the cluster's
    mover ships bin state through the mp-queue migration protocol
    (query room → export → import) while requests park on the parent's
    router exactly as in-process."""

    def _build(self, all_requests, *, strategy, indices_per_gap=1):
        from repro.serve import ProcessCluster

        cluster = ProcessCluster.for_workload(
            fresh(all_requests),
            shards=SHARDS,
            backend="native",
            table_size=TABLE_SIZE,
            n_cells=N_CELLS,
            key_space=KEY_SPACE,
            bins=BINS,
            rebalance=True,
            migration=strategy,
        )
        cluster.rebalancer.threshold = 1e9  # no organic plans
        ctl = MigrationController(
            cluster.router.partition,
            strategy=strategy,
            indices_per_gap=indices_per_gap,
        )
        cluster.controller = ctl
        cluster.router.controller = ctl
        return cluster, ctl

    def test_xfer_parked_through_fluid_handoff_applies_once(self):
        xfer = Request(rid=0, kind="xfer", key=0, key2=1, delta=3)
        cluster, ctl = self._build(
            PRIME + FILLERS + [xfer], strategy="fluid", indices_per_gap=1
        )
        applied = []
        try:
            r = cluster.execute(fresh(PRIME))
            applied.extend(r.completed)
            assert len(r.completed) == len(PRIME)

            table = cluster.router.partition.domain("list")
            ctl.admit([Migration("list", 0, 0, 1, 1.0)])

            live = fresh([xfer])[0]
            fillers = fresh(FILLERS)
            r = cluster.execute([live] + fillers[:2])
            applied.extend(r.completed)
            assert r.parked == 1 and live in r.carried
            assert ctl.pending == 1

            gaps = 0
            while ctl.pending:
                r = cluster.execute([live, fillers[2 + gaps]])
                applied.extend(r.completed)
                assert live not in r.completed
                gaps += 1
                assert gaps < 8, "fluid drain failed to finish"
            assert table.bin_owner_of(0) == 1

            r = cluster.execute([live])
            applied.extend(r.completed)
            assert live in r.completed

            rids = [req.rid for req in applied]
            assert sorted(rids) == sorted(set(rids)), "a lane applied twice"
            assert diff_stream_state(
                cluster.coordinator, applied,
                table_size=TABLE_SIZE, n_cells=N_CELLS, key_space=KEY_SPACE,
            ) is None
            values = cluster.coordinator.list_values()
            assert values[0] == 7 and values[1] == 13
        finally:
            cluster.shutdown()

    def test_claim_loser_replays_exactly_once_across_flip(self):
        xfer_a = Request(rid=0, kind="xfer", key=0, key2=1, delta=3)
        xfer_b = Request(rid=1, kind="xfer", key=1, key2=2, delta=5)
        cluster, ctl = self._build(
            PRIME + FILLERS + [xfer_a, xfer_b], strategy="all-at-once"
        )
        applied = []
        try:
            r = cluster.execute(fresh(PRIME))
            applied.extend(r.completed)

            live_a = fresh([xfer_a])[0]
            live_b = fresh([xfer_b])[0]
            r = cluster.execute([live_a, live_b])
            applied.extend(r.completed)
            assert r.completed == [live_a]
            assert live_b in r.carried

            table = cluster.router.partition.domain("list")
            ctl.admit([Migration("list", 0, 0, 1, 1.0)])
            r = cluster.execute([live_b] + fresh(FILLERS)[:1])
            applied.extend(r.completed)
            assert r.parked == 1 and live_b in r.carried
            assert ctl.pending == 0
            assert table.bin_owner_of(0) == 1

            r = cluster.execute([live_b])
            applied.extend(r.completed)
            assert live_b in r.completed

            rids = [req.rid for req in applied]
            assert sorted(rids) == sorted(set(rids)), "a lane applied twice"
            assert diff_stream_state(
                cluster.coordinator, applied,
                table_size=TABLE_SIZE, n_cells=N_CELLS, key_space=KEY_SPACE,
            ) is None
            values = cluster.coordinator.list_values()
            assert values[0] == 7 and values[1] == 8 and values[2] == 15
        finally:
            cluster.shutdown()
