"""Property-based equivalence: streaming a request sequence through
``repro.runtime`` — under any batching policy, with or without cross-
batch carryover — leaves the shared structures in the same final state
as one-shot FOL1 batch processing of the whole sequence.

"Same final state" is the strongest claim each structure supports:

* chained hash table — identical key multiset *per chain* (chain order
  is execution-order dependent and explicitly irrelevant, paper
  footnote 5);
* BST — identical inorder key sequence (== sorted input) plus the
  search-tree invariant; shapes may differ because insertion order is
  policy-dependent, which the paper's tree algorithms also allow;
* shared list cells — identical cell values (bumps are commutative
  deltas).

This is the guarantee that makes carryover safe: deferring a filtered
lane to the next micro-batch instead of retrying in-batch (§3.2) must
never change what the structure ends up containing.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.chained import vector_chained_insert
from repro.hashing.table import ChainedHashTable
from repro.machine import CostModel, make_machine
from repro.mem.arena import BumpAllocator
from repro.runtime import (
    AdaptiveBatcher,
    BoundedQueue,
    DeadlineBatcher,
    FixedBatcher,
    StreamService,
    requests_from_keys,
)

FREE = CostModel.free()
TABLE_SIZE = 11
N_CELLS = 8


def make_policy(name):
    """Small policies so even short streams split into several batches."""
    if name == "fixed":
        return FixedBatcher(batch_size=7)
    if name == "deadline":
        return DeadlineBatcher(deadline=50.0, max_size=7)
    return AdaptiveBatcher(
        initial=8, min_size=2, max_size=16, m_low=2.0, m_high=4.0, smoothing=1.0
    )


def run_stream(keys, kind, policy, carryover, deltas=None, queue=None):
    reqs = requests_from_keys(keys, kind=kind, deltas=deltas)
    svc = StreamService.for_workload(
        reqs,
        batcher=make_policy(policy),
        queue=queue,
        table_size=TABLE_SIZE,
        n_cells=N_CELLS,
        carryover=carryover,
        cost_model=FREE,
    )
    metrics = svc.run(reqs)
    assert metrics.summary()["completed"] == len(reqs)
    return svc


# Duplicate-heavy key streams: a dozen distinct keys so chains collide
# and multiplicity regularly exceeds the batch size.
key_streams = st.lists(st.integers(min_value=0, max_value=12), max_size=50)
policies = st.sampled_from(["fixed", "deadline", "adaptive"])


# ----------------------------------------------------------------------
# chained hash table
# ----------------------------------------------------------------------
def one_shot_chains(keys):
    """Reference state: the pre-existing Figure 7 batch algorithm."""
    vm = make_machine(4 * TABLE_SIZE + 2 * max(len(keys), 1) + 64,
                      cost_model=FREE)
    table = ChainedHashTable(BumpAllocator(vm.mem), TABLE_SIZE,
                             max(len(keys), 1))
    vector_chained_insert(vm, table, np.asarray(keys, dtype=np.int64))
    return [sorted(c) for c in table.all_chains()]


@settings(max_examples=40, deadline=None)
@given(keys=key_streams, policy=policies, carryover=st.booleans())
def test_hash_stream_matches_one_shot(keys, policy, carryover):
    svc = run_stream(keys, "hash", policy, carryover)
    streamed = [sorted(c) for c in svc.executor.table.all_chains()]
    assert streamed == one_shot_chains(keys)


# ----------------------------------------------------------------------
# binary search tree
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(keys=key_streams, policy=policies, carryover=st.booleans())
def test_bst_stream_matches_one_shot(keys, policy, carryover):
    svc = run_stream(keys, "bst", policy, carryover)
    tree = svc.executor.tree
    assert tree.inorder() == sorted(keys)
    assert tree.size() == len(keys)
    tree.check_bst_invariant()


# ----------------------------------------------------------------------
# shared list cells
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    updates=st.lists(
        st.tuples(st.integers(0, N_CELLS - 1), st.integers(1, 9)), max_size=50
    ),
    policy=policies,
    carryover=st.booleans(),
)
def test_list_stream_matches_delta_sums(updates, policy, carryover):
    keys = [k for k, _ in updates]
    deltas = [d for _, d in updates]
    svc = run_stream(keys, "list", policy, carryover, deltas=deltas)
    expected = [0] * N_CELLS
    for k, d in updates:
        expected[k] += d
    assert svc.executor.list_values() == expected


# ----------------------------------------------------------------------
# the same property survives backpressure (blocking admission)
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(keys=key_streams, carryover=st.booleans())
def test_hash_stream_equivalent_under_backpressure(keys, carryover):
    svc = run_stream(keys, "hash", "fixed", carryover,
                     queue=BoundedQueue(4, admission="block"))
    streamed = [sorted(c) for c in svc.executor.table.all_chains()]
    assert streamed == one_shot_chains(keys)


# ----------------------------------------------------------------------
# deterministic worst cases, all policies x carryover
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["fixed", "deadline", "adaptive"])
@pytest.mark.parametrize("carryover", [False, True])
def test_all_shared_hot_key(policy, carryover):
    """Theorem 6's regime: every request targets one address."""
    keys = [5] * 30
    svc = run_stream(keys, "hash", policy, carryover)
    streamed = [sorted(c) for c in svc.executor.table.all_chains()]
    assert streamed == one_shot_chains(keys)
