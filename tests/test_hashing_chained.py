"""Tests for chained multiple hashing (Figure 7, FOL1-based)."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import (
    ChainedHashTable,
    scalar_chained_insert,
    scalar_chained_lookup,
    vector_chained_insert,
)
from repro.machine import CONFLICT_POLICIES, CostModel, Memory, ScalarProcessor, VectorMachine
from repro.mem import BumpAllocator


def build(size=13, capacity=256, seed=0):
    vm = VectorMachine(
        Memory(2 * size + 2 * capacity + 64, cost_model=CostModel.free(), seed=seed)
    )
    table = ChainedHashTable(BumpAllocator(vm.mem), size, capacity)
    return vm, table


class TestVectorInsert:
    def test_empty(self):
        vm, t = build()
        assert vector_chained_insert(vm, t, np.array([], dtype=np.int64)) == 0

    def test_no_collisions_single_round(self):
        vm, t = build()
        m = vector_chained_insert(vm, t, np.array([0, 1, 2, 3]))
        assert m == 1
        assert sorted(t.stored_keys().tolist()) == [0, 1, 2, 3]

    def test_paper_figure4_keys(self):
        """Keys 353 and 911 hash to the same entry (mod 13 both = 2 and
        1... pick mod where they collide: 353 % 31 = 12, 911 % 31 = 12)
        and must both be chained from that entry."""
        vm, t = build(size=31)
        vector_chained_insert(vm, t, np.array([353, 911]))
        chain = t.chain(353 % 31)
        assert sorted(chain) == [353, 911]

    def test_duplicate_keys_both_stored(self):
        vm, t = build()
        vector_chained_insert(vm, t, np.array([7, 7, 7]))
        assert t.chain(7 % 13) == [7, 7, 7]

    def test_m_equals_max_slot_multiplicity(self):
        vm, t = build(size=13)
        keys = np.array([0, 13, 26, 1, 14, 2])  # slot 0 x3, slot 1 x2, slot 2 x1
        m = vector_chained_insert(vm, t, keys)
        assert m == 3

    def test_chain_membership_per_slot(self):
        vm, t = build(size=13, seed=3)
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 1000, size=100)
        vector_chained_insert(vm, t, keys)
        for slot in range(13):
            expected = sorted(int(k) for k in keys if k % 13 == slot)
            assert sorted(t.chain(slot)) == expected

    @pytest.mark.parametrize("policy", CONFLICT_POLICIES)
    def test_policies(self, policy):
        vm, t = build(seed=9)
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 200, size=80)
        vector_chained_insert(vm, t, keys, policy=policy)
        assert Counter(t.stored_keys().tolist()) == Counter(keys.tolist())

    def test_heads_not_corrupted_by_labels(self):
        """Regression: FOL labels must go to the work area, not the
        chain-head words (the heads hold live pointers)."""
        vm, t = build()
        vector_chained_insert(vm, t, np.array([1, 1]))
        vector_chained_insert(vm, t, np.array([1]))  # second batch
        assert t.chain(1) == [1, 1, 1]


class TestScalarBaseline:
    def test_insert_and_lookup(self):
        vm, t = build()
        sp = ScalarProcessor(vm.mem)
        scalar_chained_insert(sp, t, [5, 18, 5])
        assert t.chain(5) == [5, 18, 5]
        assert scalar_chained_lookup(sp, t, 18)
        assert not scalar_chained_lookup(sp, t, 31)

    def test_chain_order_is_lifo(self):
        vm, t = build()
        sp = ScalarProcessor(vm.mem)
        scalar_chained_insert(sp, t, [1, 14, 27])
        assert t.chain(1) == [27, 14, 1]


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(st.integers(0, 500), min_size=0, max_size=100),
    seed=st.integers(0, 5),
)
def test_scalar_vector_same_multiset_per_chain(keys, seed):
    """The chain *contents* (as multisets) must agree between the
    sequential and FOL implementations; order within a chain may differ
    (paper footnote 5)."""
    keys = np.asarray(keys, dtype=np.int64)
    vm, vt = build(seed=seed)
    vector_chained_insert(vm, vt, keys)

    sm = Memory(2 * 13 + 2 * 256 + 64, cost_model=CostModel.free(), seed=seed)
    st_ = ChainedHashTable(BumpAllocator(sm), 13, 256)
    scalar_chained_insert(ScalarProcessor(sm), st_, keys)

    for slot in range(13):
        assert Counter(vt.chain(slot)) == Counter(st_.chain(slot))
