"""Unit tests for the cycle cost model."""

import pytest

from repro.machine import CostModel


class TestPresets:
    def test_s810_is_default(self):
        assert CostModel.s810() == CostModel()

    def test_free_is_all_zero(self):
        cm = CostModel.free()
        assert cm.scalar_alu == 0
        assert cm.scalar_mem == 0
        assert cm.scalar_mem_seq == 0
        assert cm.scalar_branch == 0
        assert cm.vector_startup == 0
        assert cm.chime_contig == cm.chime_gather == cm.chime_alu == 0
        assert cm.chime_compress == cm.chime_reduce == cm.chime_scan == 0

    def test_s810_encodes_weak_scalar(self):
        """The calibration invariant everything rests on: random scalar
        memory ops are much dearer than vector gather chimes."""
        cm = CostModel.s810()
        assert cm.scalar_mem / cm.chime_gather > 10
        assert cm.scalar_mem > cm.scalar_mem_seq

    def test_uniform_is_flat(self):
        cm = CostModel.uniform()
        assert cm.scalar_mem <= 2 * cm.chime_contig

    def test_presets_are_frozen(self):
        with pytest.raises(Exception):
            CostModel.s810().scalar_mem = 1.0


class TestVectorCost:
    def test_linear_in_length(self):
        cm = CostModel(vector_startup=10.0, chime_contig=2.0)
        assert cm.vector_cost(5, 2.0) == 10.0 + 2.0 * 5
        assert cm.vector_cost(100, 2.0) == 10.0 + 2.0 * 100

    def test_zero_length_still_pays_startup(self):
        cm = CostModel(vector_startup=10.0)
        assert cm.vector_cost(0, 3.0) == 10.0
        assert cm.vector_cost(-1, 3.0) == 10.0

    def test_startup_amortisation(self):
        """Per-element cost must fall with vector length — the effect
        behind the rising half of Figure 10's curves."""
        cm = CostModel.s810()
        per_short = cm.vector_cost(10, cm.chime_gather) / 10
        per_long = cm.vector_cost(1000, cm.chime_gather) / 1000
        assert per_long < per_short / 2


class TestOverrides:
    def test_with_overrides_replaces_field(self):
        cm = CostModel.s810().with_overrides(scalar_mem=99.0)
        assert cm.scalar_mem == 99.0
        assert cm.scalar_alu == CostModel.s810().scalar_alu

    def test_with_overrides_does_not_mutate(self):
        base = CostModel.s810()
        base.with_overrides(scalar_mem=99.0)
        assert base.scalar_mem == CostModel.s810().scalar_mem

    def test_with_overrides_rejects_unknown_field(self):
        with pytest.raises(TypeError):
            CostModel.s810().with_overrides(not_a_field=1.0)


class TestSectioning:
    def test_default_unsectioned(self):
        assert CostModel.s810().section_size == 0

    def test_sectioned_cost(self):
        cm = CostModel(vector_startup=10.0, section_size=4)
        assert cm.vector_cost(4, 1.0) == 10.0 + 4.0
        assert cm.vector_cost(5, 1.0) == 20.0 + 5.0   # two sections
        assert cm.vector_cost(12, 1.0) == 30.0 + 12.0

    def test_sectioned_matches_unsectioned_below_section(self):
        a = CostModel.s810()
        b = CostModel.s810_sectioned(256)
        for n in (1, 100, 256):
            assert a.vector_cost(n, 2.0) == b.vector_cost(n, 2.0)

    def test_sectioned_amortisation_saturates(self):
        """Per-element cost stops falling once vectors exceed one
        section — the mechanism behind the strip-mining ablation."""
        cm = CostModel.s810_sectioned(256)
        per_256 = cm.vector_cost(256, 1.0) / 256
        per_4096 = cm.vector_cost(4096, 1.0) / 4096
        assert abs(per_256 - per_4096) < 1e-9
