"""Tests for the executable theorem checkers themselves — both that
correct runs pass and that corrupted decompositions are caught."""

import numpy as np
import pytest

from repro.core import fol1
from repro.core.decomposition import Decomposition
from repro.core.theorems import (
    check_all,
    check_theorem1_termination,
    check_theorem2_correctness,
    check_theorem3_monotone,
    check_theorem4_linear,
    check_theorem5_minimality,
    check_theorem6_quadratic,
    fol1_element_work,
    multiplicity_histogram,
)
from repro.errors import DecompositionError


def bad(v, sets):
    return Decomposition(
        index_vector=np.asarray(v, dtype=np.int64),
        sets=[np.asarray(s, dtype=np.int64) for s in sets],
    )


class TestPositive:
    def test_real_run_passes_all(self, vm, rng):
        v = rng.integers(1, 50, size=300)
        check_all(fol1(vm, v))

    def test_theorem4_linear_when_no_sharing(self, vm):
        dec = fol1(vm, np.arange(1, 101, dtype=np.int64))
        check_theorem4_linear(dec)

    def test_theorem6_quadratic_exact(self, vm):
        dec = fol1(vm, np.full(10, 5, dtype=np.int64))
        check_theorem6_quadratic(dec)


class TestNegative:
    def test_termination_catches_empty_set(self):
        with pytest.raises(DecompositionError):
            check_theorem1_termination(bad([5], [[], [0]]))

    def test_correctness_catches_shared_set(self):
        with pytest.raises(DecompositionError):
            check_theorem2_correctness(bad([5, 5], [[0, 1]]))

    def test_monotone_catches_growth(self):
        with pytest.raises(DecompositionError):
            check_theorem3_monotone(bad([5, 9, 5, 9], [[0], [1, 2, 3]]))

    def test_monotone_catches_m_gt_1_without_duplicates(self):
        with pytest.raises(DecompositionError):
            check_theorem3_monotone(bad([5, 9], [[0], [1]]))

    def test_minimality_catches_extra_sets(self):
        with pytest.raises(DecompositionError):
            check_theorem5_minimality(bad([5, 9], [[0], [1]]))

    def test_theorem4_catches_quadratic_work(self):
        dec = bad([5] * 50, [[i] for i in range(50)])
        with pytest.raises(DecompositionError):
            check_theorem4_linear(dec)

    def test_theorem6_rejects_non_singleton_runs(self):
        with pytest.raises(DecompositionError):
            check_theorem6_quadratic(bad([5, 9], [[0, 1]]))


class TestElementWork:
    def test_single_set(self):
        assert fol1_element_work(bad([1, 2, 3], [[0, 1, 2]])) == 3

    def test_two_rounds(self):
        # round 1 sees 3 elements, round 2 sees 1 -> 4
        assert fol1_element_work(bad([5, 9, 5], [[0, 1], [2]])) == 4

    def test_worst_case_formula(self):
        n = 7
        dec = bad([1] * n, [[i] for i in range(n)])
        assert fol1_element_work(dec) == n * (n + 1) // 2


class TestHistogram:
    def test_empty(self):
        assert multiplicity_histogram(np.array([], dtype=np.int64)) == {}

    def test_mixed(self):
        h = multiplicity_histogram(np.array([1, 1, 1, 2, 2, 3]))
        assert h == {3: 1, 2: 1, 1: 1}
