"""Unit tests for FOL label strategies (§3.2 step 0, footnote 6)."""

import numpy as np
import pytest

from repro.core.labels import (
    displacement_labels,
    index_labels,
    key_labels,
    min_label_bits,
    negated_index_labels,
    tuple_labels,
    validate_unique,
)
from repro.errors import LabelError


class TestIndexLabels:
    def test_subscripts(self, vm):
        assert np.array_equal(index_labels(vm, 4), [0, 1, 2, 3])

    def test_negated(self, vm):
        """Figure 12's -iota labels: -1, -2, ..., -n."""
        assert np.array_equal(negated_index_labels(vm, 3), [-1, -2, -3])

    def test_negated_all_negative(self, vm):
        assert (negated_index_labels(vm, 10) < 0).all()


class TestDisplacementLabels:
    def test_stride(self, vm):
        assert np.array_equal(displacement_labels(vm, 3, base=100, stride=8),
                              [100, 108, 116])

    def test_rejects_nonpositive_stride(self, vm):
        with pytest.raises(LabelError):
            displacement_labels(vm, 3, base=0, stride=0)


class TestKeyLabels:
    def test_accepts_unique(self):
        out = key_labels(np.array([5, 3, 9]))
        assert np.array_equal(out, [5, 3, 9])

    def test_rejects_duplicates(self):
        with pytest.raises(LabelError):
            key_labels(np.array([5, 3, 5]))


class TestTupleLabels:
    def test_unique_across_vectors(self, vm):
        labs = tuple_labels(vm, 4, 3)
        flat = np.concatenate(labs)
        assert np.unique(flat).size == flat.size

    def test_rejects_zero_vectors(self, vm):
        with pytest.raises(LabelError):
            tuple_labels(vm, 4, 0)


class TestValidateUnique:
    def test_passes_unique(self):
        validate_unique(np.array([1, 2, 3]))

    def test_rejects_duplicates(self):
        with pytest.raises(LabelError):
            validate_unique(np.array([1, 1]))

    def test_rejects_2d(self):
        with pytest.raises(LabelError):
            validate_unique(np.zeros((2, 2), dtype=np.int64))


class TestMinLabelBits:
    @pytest.mark.parametrize("n,bits", [(1, 1), (2, 1), (3, 2), (4, 2),
                                        (5, 3), (1024, 10), (1025, 11)])
    def test_log2_bound(self, n, bits):
        """Paper: the work area needs >= log2(N) bits."""
        assert min_label_bits(n) == bits
