"""End-to-end tests for the multi-process serving layer.

These spawn real shard worker processes over shared memory, so they are
kept small (hundreds of requests, 2 workers) — the full-size runs live
in ``benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import glob
import math

import numpy as np
import pytest

from repro.engine.spec import stream_mix_kinds
from repro.errors import ReproError
from repro.serve import ProcessCluster, run_serve, timed_workload


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


class TestRunServe:
    def test_mixed_kinds_oracle_clean(self):
        before = _shm_segments()
        report = run_serve(
            workers=2,
            backend="native",
            requests=400,
            skew=1.2,
            batch_size=128,
            install_signal_handlers=False,
        )
        assert report.divergence is None
        assert len(report.completed) == 400
        assert not report.signalled
        summary = report.metrics.summary()
        assert summary["completed"] == 400
        assert summary["throughput_rps"] > 0
        assert math.isfinite(summary["p50_latency_ms"])
        assert math.isfinite(summary["p99_latency_ms"])
        assert summary["p50_latency_ms"] <= summary["p99_latency_ms"]
        # every registered kind rode through the default mix
        kinds = {r.kind for r in report.completed}
        assert kinds == set(stream_mix_kinds())
        # shutdown unlinked every shared-memory segment it created
        assert _shm_segments() == before

    def test_duration_stop_drains_partial(self):
        report = run_serve(
            workers=2,
            backend="native",
            requests=5000,
            rate=200.0,  # open loop: ~25 s of offered load
            duration=0.5,
            batch_size=64,
            install_signal_handlers=False,
        )
        # stopped early by the timer, not a signal
        assert report.metrics.interrupted
        assert not report.signalled
        assert 0 < len(report.completed) < 5000
        # the drained prefix still matches the oracle
        assert report.divergence is None

    def test_rejects_unknown_policy(self):
        with pytest.raises(ReproError, match="polic"):
            run_serve(
                workers=1,
                requests=10,
                policy="deadline",
                install_signal_handlers=False,
            )


class TestProcessCluster:
    def test_execute_matches_single_process_shards(self):
        """One exchange through worker processes lands the same end
        state as the in-process sharded engine on the same batch."""
        from repro.shard.coordinator import ShardCoordinator

        rng = np.random.default_rng(7)
        batch = timed_workload(rng, 300, kinds=stream_mix_kinds(), skew=1.1)
        local = ShardCoordinator.for_workload(
            [r for r in batch], shards=2, backend="native"
        )
        cluster = ProcessCluster.for_workload(
            [r for r in batch], shards=2, backend="native"
        )
        try:
            carried = list(batch)
            while carried:
                carried = cluster.execute(carried).carried
            carried = [
                r
                for r in timed_workload(
                    np.random.default_rng(7), 300,
                    kinds=stream_mix_kinds(), skew=1.1,
                )
            ]
            while carried:
                carried = local.execute(carried).carried
            assert (
                cluster.coordinator.state_fingerprint()
                == local.state_fingerprint()
            )
        finally:
            cluster.shutdown()

    def test_shutdown_is_idempotent(self):
        rng = np.random.default_rng(0)
        batch = timed_workload(rng, 50, kinds=("hash",))
        cluster = ProcessCluster.for_workload(list(batch), shards=2)
        cluster.execute(list(batch))
        cluster.shutdown()
        cluster.shutdown()  # second call must be a no-op
