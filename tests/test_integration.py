"""Integration tests: several subsystems composed on one machine, plus
end-to-end checks of the public package surface."""

from collections import Counter

import numpy as np
import pytest

import repro
from repro import (
    BumpAllocator,
    CostModel,
    Memory,
    ScalarProcessor,
    VectorMachine,
    fol1,
    make_machine,
)
from repro.hashing import ChainedHashTable, OpenHashTable, vector_chained_insert, vector_open_insert
from repro.sorting import AddressCalcWorkspace, vector_address_calc_sort
from repro.trees import BinarySearchTree, vector_bst_insert


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_docstring_example(self):
        """The example in repro.__doc__ must actually work."""
        vm = make_machine(1024)
        dec = fol1(vm, np.array([5, 9, 5, 7, 5]))
        assert dec.m == 3

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None


class TestSharedMachine:
    """Multiple data structures on ONE memory: the layout must not
    interfere, and the single cycle ledger sums all of them."""

    def test_table_tree_and_sorter_coexist(self):
        vm = make_machine(200_000, cost_model=CostModel.free(), seed=1)
        alloc = BumpAllocator(vm.mem)
        table = OpenHashTable(alloc, 67)
        tree = BinarySearchTree(alloc, 128)
        ws = AddressCalcWorkspace(alloc, 64)

        rng = np.random.default_rng(0)
        keys = rng.choice(10_000, size=30, replace=False)
        vector_open_insert(vm, table, keys)

        tkeys = rng.integers(0, 1000, size=100)
        vector_bst_insert(vm, tree, tkeys)

        data = rng.integers(0, 2**30, size=64)
        out = vector_address_calc_sort(vm, ws, data, vmax=2**30)

        assert np.array_equal(np.sort(table.stored_keys()), np.sort(keys))
        tree.check_bst_invariant()
        assert Counter(tree.inorder()) == Counter(tkeys.tolist())
        assert np.array_equal(out, np.sort(data))

    def test_cycle_ledger_accumulates_across_structures(self):
        vm = make_machine(100_000, cost_model=CostModel.s810(), seed=1)
        alloc = BumpAllocator(vm.mem)
        table = ChainedHashTable(alloc, 37, 64)
        before = vm.counter.total
        vector_chained_insert(vm, table, np.arange(64, dtype=np.int64))
        assert vm.counter.total > before


class TestScalarVectorOnSameMemory:
    def test_scalar_reads_vector_writes(self):
        vm = make_machine(4096, cost_model=CostModel.free())
        sp = ScalarProcessor(vm.mem)
        alloc = BumpAllocator(vm.mem)
        table = OpenHashTable(alloc, 67)
        vector_open_insert(vm, table, np.array([5, 72]))
        # the scalar unit sees the vector unit's writes immediately
        from repro.hashing import scalar_open_lookup
        assert scalar_open_lookup(sp, table, 5) is not None
        assert scalar_open_lookup(sp, table, 72) is not None


class TestMakeMachine:
    def test_default_cost_model_is_s810(self):
        vm = make_machine(64)
        assert vm.cost == CostModel.s810()

    def test_seed_controls_conflict_winners(self):
        winners = set()
        for seed in range(10):
            vm = make_machine(64, seed=seed)
            vm.scatter(np.full(6, 7, dtype=np.int64), np.arange(6, dtype=np.int64))
            winners.add(vm.mem.peek(7))
        assert len(winners) > 1


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, errors.ReproError)

    def test_memory_fault_catchable_as_machine_error(self):
        from repro import MachineError
        vm = make_machine(16)
        with pytest.raises(MachineError):
            vm.mem.sload(100)
