"""The observability spine (ISSUE 10): shared facade edge cases, the
lifecycle-span decomposition, the JSONL sink and the trace report.

The golden fixtures (``test_obs_golden.py``) pin bit-identical output
with tracing *off*; this file covers the shared :class:`MetricsBase`
behaviour both facades inherit and the opt-in span layer itself."""

import json
import math

import pytest

from repro.obs import (
    Clock,
    STAGES,
    TraceRecorder,
    TraceReport,
    jain_index,
    load_events,
    percentile,
    render_trace_report,
)
from repro.runtime.executor import BatchResult
from repro.runtime.metrics import StreamMetrics
from repro.runtime.queue import BoundedQueue, Request
from repro.serve.metrics import ServeMetrics


def make_stream():
    return StreamMetrics()


def make_serve():
    return ServeMetrics(workers=2, backend="native")


FACADES = [make_stream, make_serve]
FACADE_IDS = ["stream", "serve"]


# ----------------------------------------------------------------------
# shared facade edge cases (parameterized over both facades)
# ----------------------------------------------------------------------
class TestFacadeEdgeCases:
    @pytest.mark.parametrize("make", FACADES, ids=FACADE_IDS)
    def test_empty_run_percentiles_are_nan(self, make):
        m = make()
        assert math.isnan(m.latency_percentile(50))
        assert math.isnan(m.latency_percentile(99))
        # NaN renders as an em dash, never a fake 0.0
        assert m._fmt(m.latency_percentile(99)) == "—"

    @pytest.mark.parametrize("make", FACADES, ids=FACADE_IDS)
    def test_single_completion_percentiles_collapse(self, make):
        m = make()
        m.record_completion(42.5)
        assert m.latency_percentile(50) == 42.5
        assert m.latency_percentile(99) == 42.5

    @pytest.mark.parametrize("make", FACADES, ids=FACADE_IDS)
    def test_tenant_table_handles_missing_slo(self, make):
        m = make()
        m.record_completion(10.0, tenant="A")
        m.record_completion(20.0, tenant="B")
        m.tenant_weights = {"A": 0.5, "B": 0.5}
        m.tenant_slos = {"A": 100.0}  # B has no budget
        cells = m.tenant_summary()
        assert "slo_attainment" in cells["A"] or any(
            k.startswith("slo") for k in cells["A"]
        )
        assert not any(k.startswith("slo") for k in cells["B"])
        table = m.tenant_table()
        assert "A" in table and "B" in table
        assert "—" in table  # B's empty SLO cells
        # partial SLO coverage -> fairness falls back to throughput
        assert m.jain_fairness() == pytest.approx(
            jain_index([1 / 0.5, 1 / 0.5])
        )

    @pytest.mark.parametrize("make", FACADES, ids=FACADE_IDS)
    def test_max_depth_reconciliation(self, make):
        m = make()
        m.max_queue_depth = 7  # sampled at launch (after drains)
        m.queue_max_depth = 12  # the queue's locked high-water mark
        assert m.reconciled_max_depth == 12
        m.queue_max_depth = 3
        assert m.reconciled_max_depth == 7

    @pytest.mark.parametrize("make", FACADES, ids=FACADE_IDS)
    def test_absorb_queue_copies_the_ledger(self, make):
        q = BoundedQueue(capacity=2, admission="reject")
        assert q.offer(Request(rid=0, kind="hash", key=1), 0.0)
        assert q.offer(Request(rid=1, kind="hash", key=2), 0.0)
        assert not q.offer(Request(rid=2, kind="hash", key=3), 0.0)
        m = make()
        m.absorb_queue(q)
        assert m.rejected == 1
        assert m.queue_max_depth == 2

    @pytest.mark.parametrize("make", FACADES, ids=FACADE_IDS)
    def test_stage_breakdown_key_only_under_trace(self, make):
        m = make()
        out = {}
        m._stage_summary_keys(out)
        assert out == {}  # tracing off: summary shape unchanged
        m.trace_recorder = TraceRecorder(Clock.simulated(lambda: 0.0))
        m._stage_summary_keys(out)
        assert set(out) == {"stage_breakdown"}
        assert tuple(out["stage_breakdown"]["stages"]) == STAGES


# ----------------------------------------------------------------------
# the span layer: exact decomposition
# ----------------------------------------------------------------------
def _request(rid, arrival=0.0):
    return Request(rid=rid, kind="hash", key=rid, arrival=arrival)


class TestDecomposition:
    def test_percentile_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_stages_sum_to_latency_single_batch(self):
        rec = TraceRecorder(Clock.simulated(lambda: 0.0))
        req = _request(1, arrival=2.0)
        rec.request_offered(req, 5.0, "admitted")  # admit = 3
        result = BatchResult(completed=[req], exchange_span=4.0)
        rec.record_batch(0, [req], result, 10.0, 30.0)
        (done,) = rec.completed_spans
        s = done["stages"]
        assert s["admit"] == 3.0
        assert s["queue"] == 5.0  # 5 -> 10, no linger
        assert s["commit"] == 4.0
        assert s["execute"] == 16.0  # 20 total - 4 commit
        assert done["latency"] == 28.0
        assert sum(s.values()) == pytest.approx(done["latency"])

    def test_linger_overlap_is_the_batch_stage(self):
        rec = TraceRecorder(Clock.simulated(lambda: 0.0))
        req = _request(1)
        rec.request_offered(req, 0.0, "admitted")
        rec.linger_wait(3.0, 8.0)  # policy chose to wait 5
        result = BatchResult(completed=[req])
        rec.record_batch(0, [req], result, 8.0, 12.0)
        s = rec.completed_spans[0]["stages"]
        assert s["batch"] == 5.0
        assert s["queue"] == 3.0  # 0 -> 8 minus the 5-cycle linger
        assert sum(s.values()) == pytest.approx(12.0)

    def test_park_gap_and_migration_phase_attribution(self):
        rec = TraceRecorder(Clock.simulated(lambda: 0.0))
        req = _request(1)
        rec.request_offered(req, 0.0, "admitted")
        # batch 0: the lane is parked (its bin is mid-handoff)
        r0 = BatchResult(carried=[req], parked=1)
        rec.record_batch(0, [req], r0, 0.0, 10.0)
        # batch 1 launches after a 5-cycle gap; 3 cycles of it are the
        # migration phase itself
        r1 = BatchResult(completed=[req], migration_span=3.0)
        rec.record_batch(1, [req], r1, 15.0, 20.0)
        (done,) = rec.completed_spans
        s = done["stages"]
        assert s["park"] == 5.0 + 3.0  # parked gap + migration phase
        assert s["execute"] == 10.0 + 2.0
        assert done["latency"] == 20.0
        assert sum(s.values()) == pytest.approx(20.0)

    def test_filtered_gap_is_the_carry_stage(self):
        rec = TraceRecorder(Clock.simulated(lambda: 0.0))
        req = _request(1)
        rec.request_offered(req, 0.0, "admitted")
        r0 = BatchResult(carried=[req])  # filtered, not parked
        rec.record_batch(0, [req], r0, 0.0, 10.0)
        r1 = BatchResult(completed=[req])
        rec.record_batch(1, [req], r1, 14.0, 18.0)
        s = rec.completed_spans[0]["stages"]
        assert s["carry"] == 4.0
        assert s["park"] == 0.0
        assert sum(s.values()) == pytest.approx(18.0)

    def test_end_to_end_stream_decomposition_is_exact(self):
        import numpy as np

        from repro.runtime.batcher import FixedBatcher
        from repro.runtime.service import StreamService, closed_loop_workload

        rng = np.random.default_rng(0)
        reqs = closed_loop_workload(rng, 80, kinds=("hash", "list", "bst"),
                                    skew=1.1)
        svc = StreamService.for_workload(
            reqs, batcher=FixedBatcher(16),
            queue=BoundedQueue(capacity=32, admission="block"),
        )
        rec = TraceRecorder(Clock.simulated(lambda: svc.now))
        svc.attach_recorder(rec)
        m = svc.run(reqs)
        bd = rec.stage_breakdown()
        assert bd["unit"] == "cycles"
        assert bd["requests"] == m.total_completed == 80
        # the acceptance bound is 1%; the construction is exact
        assert bd["sum_to_latency_max_err"] < 1e-6
        total = sum(cell["total"] for cell in bd["stages"].values())
        assert total == pytest.approx(bd["total_latency"], rel=1e-9)
        assert "stage_breakdown" in m.summary()

    def test_blocked_is_counted_once_and_admit_measures_backpressure(self):
        rec = TraceRecorder(Clock.simulated(lambda: 0.0))
        q = BoundedQueue(capacity=1, admission="block")
        q.observer = rec
        assert q.offer(_request(0), 0.0)
        late = _request(1, arrival=0.0)
        assert not q.offer(late, 1.0)
        assert not q.offer(late, 2.0)  # re-offer: not re-counted
        assert rec.counts["blocked"] == 1
        q.take(1)
        assert q.offer(late, 3.0)
        assert rec._lanes[1].stages["admit"] == 3.0


# ----------------------------------------------------------------------
# JSONL sink + offline report
# ----------------------------------------------------------------------
class TestSinkAndReport:
    def _traced_run(self, tmp_path):
        rec = TraceRecorder(
            Clock.simulated(lambda: 0.0), sink=tmp_path / "t.jsonl"
        )
        a = _request(1)
        a.tenant = "A"
        b = _request(2)
        b.tenant = "B"
        rec.request_offered(a, 0.0, "admitted")
        rec.request_offered(b, 1.0, "admitted")
        rec.record_batch(
            0, [a, b], BatchResult(completed=[a, b], exchange_span=1.0),
            4.0, 10.0,
        )
        return rec

    def test_jsonl_round_trip(self, tmp_path):
        rec = self._traced_run(tmp_path)
        path = rec.flush()
        rows = load_events(path)
        assert rows[0] == {"ev": "meta", "unit": "cycles", "schema": 1}
        assert [r["ev"] for r in rows[1:]] == [
            e["ev"] for e in rec.events
        ]
        # every line is standalone JSON (the jq-ability contract)
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_load_events_rejects_malformed_lines(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ev": "meta"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_events(bad)

    def test_report_renders_all_sections(self, tmp_path):
        rec = self._traced_run(tmp_path)
        path = rec.flush()
        text = render_trace_report(path, top=5, bins=4)
        assert "stage decomposition over 2 completed requests" in text
        assert "stage histograms" in text
        assert "per-tenant stage totals" in text
        assert "slowest requests" in text
        for stage in STAGES:
            assert stage in text

    def test_report_empty_trace(self):
        report = TraceReport([{"ev": "meta", "unit": "cycles", "schema": 1}])
        assert "no completed requests" in report.render()

    def test_trace_cli_roundtrip(self, tmp_path, capsys):
        from repro.__main__ import main

        rec = self._traced_run(tmp_path)
        path = rec.flush()
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "unit: cycles" in out
        assert "per-tenant stage totals" in out

    def test_trace_cli_missing_file_exits_2(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "trace file not found" in capsys.readouterr().err


# ----------------------------------------------------------------------
# the lint tool guards the spine
# ----------------------------------------------------------------------
def test_obs_lint_passes_on_the_tree():
    import subprocess
    import sys
    from pathlib import Path

    repo = Path(__file__).resolve().parent.parent
    proc = subprocess.run(
        [sys.executable, str(repo / "tools" / "check_obs_imports.py")],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
