"""Unit tests for the cycle ledger."""

from repro.machine import CycleCounter


class TestCharging:
    def test_scalar_charge_accumulates(self):
        c = CycleCounter()
        c.charge_scalar(10.0)
        c.charge_scalar(5.0)
        assert c.scalar_cycles == 15.0
        assert c.scalar_instructions == 2
        assert c.total == 15.0

    def test_vector_charge_tracks_elements(self):
        c = CycleCounter()
        c.charge_vector(100.0, 32)
        c.charge_vector(50.0, 8)
        assert c.vector_cycles == 150.0
        assert c.vector_instructions == 2
        assert c.vector_elements == 40

    def test_negative_element_count_clamped(self):
        c = CycleCounter()
        c.charge_vector(10.0, -5)
        assert c.vector_elements == 0

    def test_total_sums_both_units(self):
        c = CycleCounter()
        c.charge_scalar(1.0)
        c.charge_vector(2.0, 1)
        assert c.total == 3.0

    def test_categories(self):
        c = CycleCounter()
        c.charge_scalar(10.0, "scalar_mem")
        c.charge_scalar(4.0, "scalar_mem")
        c.charge_vector(7.0, 2, "v_gather")
        assert c.by_category["scalar_mem"] == 14.0
        assert c.by_category["v_gather"] == 7.0


class TestSections:
    def test_section_attribution(self):
        c = CycleCounter()
        with c.section("phase1"):
            c.charge_scalar(5.0)
        c.charge_scalar(3.0)
        assert c.by_section["phase1"] == 5.0

    def test_nested_sections_both_charged(self):
        c = CycleCounter()
        with c.section("outer"):
            c.charge_vector(2.0, 1)
            with c.section("inner"):
                c.charge_vector(4.0, 1)
        assert c.by_section["outer"] == 6.0
        assert c.by_section["inner"] == 4.0

    def test_section_stack_unwound_on_error(self):
        c = CycleCounter()
        try:
            with c.section("s"):
                raise ValueError()
        except ValueError:
            pass
        c.charge_scalar(1.0)
        assert c.by_section.get("s", 0.0) == 0.0


class TestSnapshots:
    def test_snapshot_delta(self):
        c = CycleCounter()
        c.charge_scalar(10.0)
        snap = c.snapshot()
        c.charge_vector(7.0, 3)
        assert c.delta(snap) == 7.0

    def test_reset_clears_everything(self):
        c = CycleCounter()
        c.charge_scalar(10.0, "x")
        with c.section("s"):
            c.charge_vector(5.0, 2, "y")
        c.reset()
        assert c.total == 0.0
        assert not c.by_category
        assert not c.by_section
        assert c.vector_instructions == 0
        assert c.scalar_instructions == 0
        assert c.vector_elements == 0


class TestReport:
    def test_report_mentions_units_and_categories(self):
        c = CycleCounter()
        c.charge_scalar(10.0, "scalar_mem")
        c.charge_vector(20.0, 4, "v_alu")
        text = c.report()
        assert "scalar" in text
        assert "vector" in text
        assert "scalar_mem" in text
        assert "v_alu" in text
