"""Tests for instruction tracing."""

import numpy as np
import pytest

from repro.hashing import OpenHashTable, vector_open_insert
from repro.machine import CostModel, Memory, VectorMachine
from repro.machine.trace import Tracer
from repro.mem import BumpAllocator


@pytest.fixture
def traced_vm():
    return VectorMachine(Memory(256, cost_model=CostModel.s810(), seed=0))


class TestAttachment:
    def test_records_only_while_attached(self, traced_vm):
        traced_vm.iota(4)
        with Tracer(traced_vm.counter) as tr:
            traced_vm.iota(4)
        traced_vm.iota(4)
        assert len(tr.events) == 1

    def test_counter_still_charged(self, traced_vm):
        with Tracer(traced_vm.counter):
            traced_vm.iota(8)
        cm = CostModel.s810()
        assert traced_vm.counter.vector_cycles == cm.vector_cost(8, cm.chime_alu)

    def test_double_attach_rejected(self, traced_vm):
        tr = Tracer(traced_vm.counter)
        with tr:
            with pytest.raises(RuntimeError):
                tr.__enter__()

    def test_detach_restores_methods(self, traced_vm):
        orig = traced_vm.counter.charge_vector
        with Tracer(traced_vm.counter):
            pass
        assert traced_vm.counter.charge_vector == orig
        assert "charge_vector" not in vars(traced_vm.counter)

    def test_max_events_cap(self, traced_vm):
        with Tracer(traced_vm.counter, max_events=2) as tr:
            for _ in range(5):
                traced_vm.iota(1)
        assert len(tr.events) == 2


class TestAnalysis:
    def test_instruction_mix_categories(self, traced_vm):
        with Tracer(traced_vm.counter) as tr:
            traced_vm.iota(4)                      # v_alu
            traced_vm.gather(np.array([1, 2]))     # v_gather
            traced_vm.loop_overhead()              # scalar_branch
        mix = tr.instruction_mix()
        assert mix["v_alu"] == 1
        assert mix["v_gather"] == 1
        assert mix["scalar_branch"] == 1

    def test_cycles_by_category_sums_to_total(self, traced_vm):
        with Tracer(traced_vm.counter) as tr:
            traced_vm.iota(4)
            traced_vm.gather(np.array([0, 1, 2]))
        assert sum(tr.cycles_by_category().values()) == tr.total_cycles()

    def test_lane_histogram(self, traced_vm):
        with Tracer(traced_vm.counter) as tr:
            traced_vm.iota(4)
            traced_vm.iota(100)
        hist = tr.vector_lane_histogram()
        assert hist["2-8"] == 1
        assert hist["65-512"] == 1

    def test_startup_fraction_bounds(self, traced_vm):
        with Tracer(traced_vm.counter) as tr:
            traced_vm.iota(1)  # tiny vector: startup-dominated
        frac = tr.startup_fraction(CostModel.s810().vector_startup)
        assert 0.9 < frac <= 1.0

    def test_mix_report_text(self, traced_vm):
        with Tracer(traced_vm.counter) as tr:
            traced_vm.iota(4)
        assert "v_alu" in tr.mix_report()


class TestOnRealAlgorithm:
    def test_hashing_is_gather_scatter_heavy(self):
        """The §4.1 structural fact: overwrite-and-check hashing spends
        its vector element work in the list-vector (gather/scatter)
        category more than in contiguous accesses."""
        vm = VectorMachine(Memory(256, cost_model=CostModel.s810(), seed=0))
        table = OpenHashTable(BumpAllocator(vm.mem), 67)
        keys = np.random.default_rng(0).choice(10_000, size=40, replace=False)
        with Tracer(vm.counter) as tr:
            vector_open_insert(vm, table, keys)
        cyc = tr.cycles_by_category()
        assert cyc["v_gather"] + cyc["v_scatter"] > cyc.get("v_contig", 0.0)
