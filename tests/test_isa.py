"""Tests for the ISA-level backend and the Figure 8 machine program."""

import numpy as np
import pytest

from repro.hashing import OpenHashTable, vector_open_insert
from repro.hashing.isa_program import build_figure8_program, isa_open_insert
from repro.machine import CostModel, Memory, VectorMachine
from repro.machine.isa import Assembler, Interpreter, IsaError
from repro.mem import BumpAllocator


def fresh(size=1024, cost="free", seed=0):
    cm = CostModel.free() if cost == "free" else CostModel.s810()
    vm = VectorMachine(Memory(size, cost_model=cm, seed=seed))
    return vm, Interpreter(vm)


class TestAssembler:
    def test_label_resolution(self):
        a = Assembler()
        a.emit("JMP", "end")
        a.label("end")
        a.emit("HALT")
        prog = a.assemble()
        assert prog[0].args == (1,)

    def test_unknown_opcode(self):
        with pytest.raises(IsaError):
            Assembler().emit("FROB", 1)

    def test_wrong_arity(self):
        with pytest.raises(IsaError):
            Assembler().emit("SLI", 1)

    def test_undefined_label(self):
        a = Assembler()
        a.emit("JMP", "nowhere")
        with pytest.raises(IsaError):
            a.assemble()

    def test_duplicate_label(self):
        a = Assembler()
        a.label("x")
        with pytest.raises(IsaError):
            a.label("x")


class TestInterpreterBasics:
    def test_scalar_arithmetic(self):
        vm, it = fresh()
        prog = (Assembler()
                .emit("SLI", 1, 7).emit("SLI", 2, 5)
                .emit("SADD", 3, 1, 2)
                .emit("SSUB", 4, 1, 2)
                .emit("SMUL", 5, 1, 2)
                .emit("HALT").assemble())
        it.run(prog)
        assert it.s[3] == 12 and it.s[4] == 2 and it.s[5] == 35

    def test_vector_pipeline(self):
        vm, it = fresh()
        prog = (Assembler()
                .emit("SLI", 1, 5)
                .emit("VIOTA", 0, 1)       # V0 = 0..4
                .emit("SLI", 2, 3)
                .emit("VMULS", 1, 0, 2)    # V1 = 0,3,6,9,12
                .emit("VADDV", 2, 0, 1)    # V2 = 0,4,8,12,16
                .emit("HALT").assemble())
        it.run(prog)
        assert np.array_equal(it.v[2], [0, 4, 8, 12, 16])

    def test_gather_scatter_roundtrip(self):
        vm, it = fresh()
        vm.mem.words[100:105] = [9, 8, 7, 6, 5]
        prog = (Assembler()
                .emit("SLI", 1, 5)
                .emit("VIOTA", 0, 1)
                .emit("SLI", 2, 100)
                .emit("VADDS", 0, 0, 2)     # addresses 100..104
                .emit("VGATHER", 1, 0)
                .emit("SLI", 3, 200)
                .emit("VIOTA", 2, 1)
                .emit("VADDS", 2, 2, 3)     # addresses 200..204
                .emit("VSCATTER", 2, 1)
                .emit("HALT").assemble())
        it.run(prog)
        assert np.array_equal(vm.mem.peek_range(200, 5), [9, 8, 7, 6, 5])

    def test_masked_flow(self):
        vm, it = fresh()
        prog = (Assembler()
                .emit("SLI", 1, 6)
                .emit("VIOTA", 0, 1)       # 0..5
                .emit("SLI", 2, 2)
                .emit("VMODS", 1, 0, 2)    # 0,1,0,1,0,1
                .emit("SLI", 3, 0)
                .emit("VCMPES", 0, 1, 3)   # even mask
                .emit("VCOMPRESS", 2, 0, 0)
                .emit("MCNT", 4, 0)
                .emit("MNOT", 1, 0)
                .emit("MCNT", 5, 1)
                .emit("HALT").assemble())
        it.run(prog)
        assert np.array_equal(it.v[2], [0, 2, 4])
        assert it.s[4] == 3 and it.s[5] == 3

    def test_loop_with_branches(self):
        """Sum 1..10 with a scalar loop."""
        vm, it = fresh()
        a = Assembler()
        a.emit("SLI", 1, 10)   # counter
        a.emit("SLI", 2, 0)    # acc
        a.emit("SLI", 3, 1)    # const 1
        a.label("loop")
        a.emit("JZ", 1, "done")
        a.emit("SADD", 2, 2, 1)
        a.emit("SSUB", 1, 1, 3)
        a.emit("JMP", "loop")
        a.label("done")
        a.emit("HALT")
        it.run(a.assemble())
        assert it.s[2] == 55

    def test_runaway_loop_detected(self):
        vm, it = fresh()
        it.max_steps = 100
        a = Assembler()
        a.label("spin")
        a.emit("JMP", "spin")
        a.emit("HALT")
        with pytest.raises(IsaError):
            it.run(a.assemble())

    def test_bad_register_index(self):
        vm, it = fresh()
        prog = Assembler().emit("SLI", 99, 1).emit("HALT").assemble()
        with pytest.raises(IsaError):
            it.run(prog)

    def test_pc_out_of_range(self):
        vm, it = fresh()
        prog = Assembler().emit("SLI", 1, 1).assemble()  # no HALT
        with pytest.raises(IsaError):
            it.run(prog)

    def test_charges_cycles(self):
        vm, it = fresh(cost="s810")
        prog = (Assembler()
                .emit("SLI", 1, 8)
                .emit("VIOTA", 0, 1)
                .emit("HALT").assemble())
        it.run(prog)
        assert vm.counter.total > 0


class TestFigure8Program:
    def test_matches_facade_contents(self):
        rng = np.random.default_rng(3)
        keys = rng.choice(100_000, size=40, replace=False)

        vm1 = VectorMachine(Memory(512, cost_model=CostModel.free(), seed=1))
        t1 = OpenHashTable(BumpAllocator(vm1.mem), 67)
        isa_open_insert(vm1, t1, keys, staging_base=200)

        vm2 = VectorMachine(Memory(512, cost_model=CostModel.free(), seed=1))
        t2 = OpenHashTable(BumpAllocator(vm2.mem), 67)
        vector_open_insert(vm2, t2, keys)

        assert np.array_equal(np.sort(t1.stored_keys()), np.sort(t2.stored_keys()))
        assert np.array_equal(np.sort(t1.stored_keys()), np.sort(keys))

    def test_same_seed_same_layout(self):
        """With identical conflict seeds the ISA program and the facade
        produce the *same table image*, not just the same multiset."""
        rng = np.random.default_rng(4)
        keys = rng.choice(10_000, size=30, replace=False)
        vm1 = VectorMachine(Memory(512, cost_model=CostModel.free(), seed=9))
        t1 = OpenHashTable(BumpAllocator(vm1.mem), 67)
        isa_open_insert(vm1, t1, keys, staging_base=200)
        vm2 = VectorMachine(Memory(512, cost_model=CostModel.free(), seed=9))
        t2 = OpenHashTable(BumpAllocator(vm2.mem), 67)
        vector_open_insert(vm2, t2, keys)
        assert np.array_equal(t1.entries(), t2.entries())

    def test_cycle_count_comparable_to_facade(self):
        """Same algorithm, two backends: cycles within 2x of each other."""
        rng = np.random.default_rng(5)
        keys = rng.choice(100_000, size=200, replace=False)
        vm1 = VectorMachine(Memory(1024, cost_model=CostModel.s810(), seed=2))
        t1 = OpenHashTable(BumpAllocator(vm1.mem), 521)
        isa_open_insert(vm1, t1, keys, staging_base=600)
        vm2 = VectorMachine(Memory(1024, cost_model=CostModel.s810(), seed=2))
        t2 = OpenHashTable(BumpAllocator(vm2.mem), 521)
        vector_open_insert(vm2, t2, keys)
        ratio = vm1.counter.total / vm2.counter.total
        assert 0.5 < ratio < 2.0

    def test_empty_keys(self):
        vm = VectorMachine(Memory(512, cost_model=CostModel.free()))
        t = OpenHashTable(BumpAllocator(vm.mem), 67)
        assert isa_open_insert(vm, t, np.array([], dtype=np.int64), 200) == 0

    def test_duplicate_keys_rejected(self):
        vm = VectorMachine(Memory(512, cost_model=CostModel.free()))
        t = OpenHashTable(BumpAllocator(vm.mem), 67)
        with pytest.raises(ValueError):
            isa_open_insert(vm, t, np.array([3, 3]), 200)

    def test_program_is_static(self):
        """The program assembles once and contains a real loop."""
        prog = build_figure8_program()
        ops = [i.op for i in prog]
        assert "JMP" in ops and "JZ" in ops and ops[-1] == "HALT"


class TestRemainingInstructions:
    def test_vsplat(self):
        vm, it = fresh()
        prog = (Assembler()
                .emit("SLI", 1, 7)   # value
                .emit("SLI", 2, 4)   # count
                .emit("VSPLAT", 0, 1, 2)
                .emit("HALT").assemble())
        it.run(prog)
        assert np.array_equal(it.v[0], [7, 7, 7, 7])

    def test_vsubv_vmods_vands(self):
        vm, it = fresh()
        prog = (Assembler()
                .emit("SLI", 1, 6)
                .emit("VIOTA", 0, 1)       # 0..5
                .emit("SLI", 2, 3)
                .emit("VMODS", 1, 0, 2)    # 0,1,2,0,1,2
                .emit("VSUBV", 2, 0, 1)    # 0,0,0,3,3,3
                .emit("SLI", 3, 1)
                .emit("VANDS", 3, 0, 3)    # parity 0,1,0,1,0,1
                .emit("HALT").assemble())
        it.run(prog)
        assert np.array_equal(it.v[2], [0, 0, 0, 3, 3, 3])
        assert np.array_equal(it.v[3], [0, 1, 0, 1, 0, 1])

    def test_vcmpns_and_vcmpnv(self):
        vm, it = fresh()
        prog = (Assembler()
                .emit("SLI", 1, 4)
                .emit("VIOTA", 0, 1)      # 0..3
                .emit("SLI", 2, 2)
                .emit("VCMPNS", 0, 0, 2)  # != 2
                .emit("VIOTA", 1, 1)
                .emit("VCMPNV", 1, 0, 1)  # elementwise != itself -> all false
                .emit("HALT").assemble())
        it.run(prog)
        assert it.m[0].tolist() == [True, True, False, True]
        assert not it.m[1].any()

    def test_smove_and_vlen(self):
        vm, it = fresh()
        prog = (Assembler()
                .emit("SLI", 1, 9)
                .emit("SMOVE", 2, 1)
                .emit("VIOTA", 0, 1)
                .emit("VLEN", 3, 0)
                .emit("HALT").assemble())
        it.run(prog)
        assert it.s[2] == 9
        assert it.s[3] == 9

    def test_jnz(self):
        vm, it = fresh()
        a = Assembler()
        a.emit("SLI", 1, 1)
        a.emit("JNZ", 1, "skip")
        a.emit("SLI", 2, 99)  # must be skipped
        a.label("skip")
        a.emit("HALT")
        it.run(a.assemble())
        assert it.s[2] == 0

    def test_vscatter_els_policy(self):
        """Unmasked scatter honours the run-time conflict policy."""
        vm, it = fresh()
        prog = (Assembler()
                .emit("SLI", 1, 3)
                .emit("VIOTA", 0, 1)
                .emit("SLI", 2, 0)
                .emit("VMULS", 0, 0, 2)   # addresses (0,0,0) -> all collide
                .emit("SLI", 3, 50)
                .emit("VADDS", 0, 0, 3)   # addresses (50,50,50)
                .emit("VIOTA", 1, 1)      # values 0,1,2
                .emit("VSCATTER", 0, 1)
                .emit("HALT").assemble())
        it.run(prog, scatter_policy="last")
        assert vm.mem.peek(50) == 2


class TestFol1Program:
    """FOL1 as a machine program (repro.core.isa_fol)."""

    def _run(self, v, seed=0, policy="first"):
        from repro.core.isa_fol import isa_fol1
        vm = VectorMachine(Memory(1024, cost_model=CostModel.free(), seed=seed))
        v = np.asarray(v, dtype=np.int64)
        return vm, isa_fol1(vm, v, staging_base=400, out_base=600, policy=policy)

    def test_empty(self):
        _, dec = self._run([])
        assert dec.m == 0

    def test_no_duplicates_single_round(self):
        _, dec = self._run([3, 7, 11])
        assert dec.m == 1
        dec.validate()

    def test_duplicates_decomposed_minimally(self):
        _, dec = self._run([5, 9, 5, 7, 5])
        assert dec.m == 3
        dec.validate()

    def test_matches_facade_under_first_policy(self):
        """Deterministic policy: the machine program and the Python
        facade produce the *same* decomposition."""
        from repro.core import fol1
        rng = np.random.default_rng(6)
        v = rng.integers(100, 140, size=80)
        _, dec_isa = self._run(v, policy="first")
        vm2 = VectorMachine(Memory(1024, cost_model=CostModel.free(), seed=0))
        dec_py = fol1(vm2, v, policy="first")
        assert dec_isa.m == dec_py.m
        for a, b in zip(dec_isa.sets, dec_py.sets):
            assert np.array_equal(np.sort(a), np.sort(b))

    def test_theorems_hold_under_arbitrary_policy(self):
        from repro.core.theorems import check_all
        rng = np.random.default_rng(7)
        for seed in range(5):
            v = rng.integers(100, 130, size=60)
            _, dec = self._run(v, seed=seed, policy="arbitrary")
            check_all(dec)

    def test_charges_cycles(self):
        from repro.core.isa_fol import isa_fol1
        vm = VectorMachine(Memory(1024, cost_model=CostModel.s810(), seed=0))
        isa_fol1(vm, np.array([5, 5, 9]), staging_base=400, out_base=600)
        assert vm.counter.vector_cycles > 0
