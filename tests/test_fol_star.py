"""Unit and property tests for FOL* (§3.3) — multiple rewritten items
per unit process, with the scalar-tail deadlock avoidance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fol_star, fol_star_lower_bound, internal_duplicate_mask
from repro.errors import DeadlockError, LabelError, VectorLengthError
from repro.machine import CONFLICT_POLICIES, CostModel, Memory, VectorMachine


def fresh_vm(seed: int, size: int = 4096) -> VectorMachine:
    return VectorMachine(Memory(size, cost_model=CostModel.free(), seed=seed))


class TestBasics:
    def test_empty(self, vm):
        dec = fol_star(vm, [np.array([], dtype=np.int64)])
        assert dec.m == 0

    def test_l1_behaves_like_fol1(self, vm):
        dec = fol_star(vm, [np.array([5, 9, 5])])
        dec.validate()
        assert dec.m == 2

    def test_disjoint_tuples_one_round(self, vm):
        v1 = np.array([1, 2, 3])
        v2 = np.array([11, 12, 13])
        dec = fol_star(vm, [v1, v2])
        assert dec.m == 1
        dec.validate()

    def test_figure5_overlap(self, vm):
        """The §2 tree example: redexes (n1,n3) and (n3,n5) share n3, so
        they must land in different sets."""
        v1 = np.array([1, 3])   # heads n1, n3
        v2 = np.array([3, 5])   # right children n3, n5
        dec = fol_star(vm, [v1, v2])
        assert dec.m == 2
        dec.validate()

    def test_needs_at_least_one_vector(self, vm):
        with pytest.raises(VectorLengthError):
            fol_star(vm, [])

    def test_unequal_lengths_rejected(self, vm):
        with pytest.raises(VectorLengthError):
            fol_star(vm, [np.array([1, 2]), np.array([1])])


class TestInternalDuplicates:
    def test_mask_detection(self):
        v1 = np.array([1, 2, 3])
        v2 = np.array([1, 9, 3])
        assert np.array_equal(internal_duplicate_mask([v1, v2]),
                              [True, False, True])

    def test_error_mode(self, vm):
        with pytest.raises(LabelError):
            fol_star(vm, [np.array([4]), np.array([4])])

    def test_isolate_mode(self, vm):
        v1 = np.array([4, 1, 2])
        v2 = np.array([4, 2, 9])   # tuple 0 internally duplicated
        dec = fol_star(vm, [v1, v2], internal="isolate")
        dec.check_partition()
        # tuple 0 must be alone in its set
        for s in dec.sets:
            if 0 in s:
                assert s.size == 1

    def test_bad_mode_rejected(self, vm):
        with pytest.raises(ValueError):
            fol_star(vm, [np.array([4]), np.array([4])], internal="nope")


class TestLabels:
    def test_cross_vector_duplicate_labels_rejected(self, vm):
        with pytest.raises(LabelError):
            fol_star(
                vm,
                [np.array([1]), np.array([2])],
                labels=[np.array([7]), np.array([7])],
            )

    def test_wrong_label_shape_rejected(self, vm):
        with pytest.raises(VectorLengthError):
            fol_star(
                vm,
                [np.array([1, 2]), np.array([3, 4])],
                labels=[np.array([0, 1])],
            )


class TestDeadlockAvoidance:
    def test_cross_overlap_makes_progress(self, vm):
        """Pattern engineered so every tuple shares a cell with another
        (cyclic overlap): without the scalar tail this can deadlock."""
        v1 = np.array([1, 2, 3, 4])
        v2 = np.array([2, 3, 4, 1])
        dec = fol_star(vm, [v1, v2])
        dec.validate()

    def test_max_rounds_guard(self, vm):
        with pytest.raises(DeadlockError):
            fol_star(
                vm,
                [np.array([1, 1, 1]), np.array([2, 3, 4])],
                max_rounds=1,
            )


class TestLowerBound:
    def test_lower_bound(self):
        v1 = np.array([1, 1, 2])
        v2 = np.array([3, 4, 1])
        assert fol_star_lower_bound([v1, v2]) == 3  # address 1 appears 3x

    def test_m_at_least_lower_bound(self, vm, rng):
        v1 = rng.integers(1, 10, size=40)
        v2 = rng.integers(10, 20, size=40)
        dec = fol_star(vm, [v1, v2])
        assert dec.m >= fol_star_lower_bound([v1, v2])


tuple_vectors = st.integers(2, 4).flatmap(
    lambda l: st.integers(1, 40).flatmap(
        lambda n: st.lists(
            st.lists(st.integers(1, 30), min_size=n, max_size=n),
            min_size=l, max_size=l,
        )
    )
)


@settings(max_examples=40, deadline=None)
@given(vs=tuple_vectors, seed=st.integers(0, 5),
       policy=st.sampled_from(CONFLICT_POLICIES))
def test_fol_star_output_conditions(vs, seed, policy):
    """Partition + within-set address distinctness on arbitrary tuple
    workloads (internally-duplicated tuples isolated)."""
    arrs = []
    for k, v in enumerate(vs):
        # keep each vector in its own address range except for vector 0
        # and 1 which may collide (cross-vector sharing)
        base = 0 if k < 2 else 40 * k
        arrs.append(np.asarray(v, dtype=np.int64) + base)
    dec = fol_star(fresh_vm(seed, size=2048), arrs, internal="isolate",
                   policy=policy)
    dec.validate()


@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 30), seed=st.integers(0, 5))
def test_fully_overlapping_tuples_serialise(n, seed):
    """Every tuple identical -> n singleton sets."""
    v1 = np.full(n, 3, dtype=np.int64)
    v2 = np.full(n, 7, dtype=np.int64)
    dec = fol_star(fresh_vm(seed, size=128), [v1, v2])
    assert dec.m == n
    assert all(s.size == 1 for s in dec.sets)
    dec.validate()
