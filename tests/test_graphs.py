"""Tests for FOL-based connected components, cross-checked against
networkx (installed oracle)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.graphs import ParentForest, scalar_components, vector_components
from repro.machine import CONFLICT_POLICIES, CostModel, Memory, ScalarProcessor, VectorMachine
from repro.mem import BumpAllocator


def build(n_nodes, seed=0):
    vm = VectorMachine(
        Memory(2 * n_nodes + 64, cost_model=CostModel.free(), seed=seed)
    )
    forest = ParentForest(BumpAllocator(vm.mem), n_nodes)
    return vm, forest


def nx_components(n, u, v):
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(zip(u.tolist(), v.tolist()))
    return sorted(sorted(c) for c in nx.connected_components(g))


def forest_components(forest):
    roots = forest.roots()
    groups = {}
    for node, r in enumerate(roots):
        groups.setdefault(int(r), []).append(node)
    return sorted(sorted(g) for g in groups.values())


class TestParentForest:
    def test_initial_singletons(self):
        _, f = build(5)
        assert f.component_count() == 5

    def test_rejects_empty(self, alloc):
        with pytest.raises(ReproError):
            ParentForest(alloc, 0)

    def test_cycle_detection(self):
        _, f = build(3)
        f.memory.poke(f.base + 0, 1)
        f.memory.poke(f.base + 1, 0)
        with pytest.raises(ReproError):
            f.roots()


class TestVectorComponents:
    def test_no_edges(self):
        vm, f = build(4)
        out = vector_components(vm, f, np.array([], dtype=np.int64),
                                np.array([], dtype=np.int64))
        assert out.size == 0
        assert f.component_count() == 4

    def test_single_edge(self):
        vm, f = build(4)
        chosen = vector_components(vm, f, np.array([0]), np.array([3]))
        assert chosen.tolist() == [0]
        assert f.component_count() == 3

    def test_chain(self):
        vm, f = build(5)
        u = np.array([0, 1, 2, 3])
        v = np.array([1, 2, 3, 4])
        chosen = vector_components(vm, f, u, v)
        assert f.component_count() == 1
        assert chosen.size == 4  # all tree edges

    def test_parallel_conflicting_edges(self):
        """Many edges targeting node 0: the FOL election serialises."""
        vm, f = build(9)
        u = np.zeros(8, dtype=np.int64)
        v = np.arange(1, 9, dtype=np.int64)
        chosen = vector_components(vm, f, u, v)
        assert f.component_count() == 1
        assert chosen.size == 8

    def test_duplicate_and_self_edges(self):
        vm, f = build(4)
        u = np.array([0, 0, 1, 2, 2])
        v = np.array([1, 1, 1, 2, 3])  # dup edge, self loop
        chosen = vector_components(vm, f, u, v)
        assert f.component_count() == 2  # {0,1} and {2,3}
        assert chosen.size == 2  # spanning forest has exactly 2 edges

    def test_complete_graph(self):
        vm, f = build(8)
        uu, vv = np.triu_indices(8, k=1)
        chosen = vector_components(vm, f, uu.astype(np.int64), vv.astype(np.int64))
        assert f.component_count() == 1
        assert chosen.size == 7  # spanning tree of K8

    def test_edge_bounds(self):
        vm, f = build(3)
        with pytest.raises(ReproError):
            vector_components(vm, f, np.array([0]), np.array([3]))

    @pytest.mark.parametrize("policy", CONFLICT_POLICIES)
    def test_policies(self, policy):
        rng = np.random.default_rng(2)
        n = 40
        u = rng.integers(0, n, size=80)
        v = rng.integers(0, n, size=80)
        vm, f = build(n, seed=5)
        vector_components(vm, f, u, v, policy=policy)
        assert forest_components(f) == nx_components(n, u, v)


class TestScalarComponents:
    def test_matches_networkx(self):
        rng = np.random.default_rng(1)
        n = 30
        u = rng.integers(0, n, size=50)
        v = rng.integers(0, n, size=50)
        vm, f = build(n)
        scalar_components(ScalarProcessor(vm.mem), f, u, v)
        assert forest_components(f) == nx_components(n, u, v)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 50),
    edges=st.lists(st.tuples(st.integers(0, 49), st.integers(0, 49)),
                   max_size=120),
    seed=st.integers(0, 5),
)
def test_components_match_networkx_property(n, edges, seed):
    u = np.array([a % n for a, _ in edges], dtype=np.int64)
    v = np.array([b % n for _, b in edges], dtype=np.int64)
    vm, f = build(n, seed=seed)
    chosen = vector_components(vm, f, u, v)
    assert forest_components(f) == nx_components(n, u, v)
    # chosen edges form a forest with (n - #components) edges
    expected_tree_edges = n - f.component_count()
    assert chosen.size == expected_tree_edges
    # and none of them is a self loop
    assert (u[chosen] != v[chosen]).all()
