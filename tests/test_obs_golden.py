"""Golden-parity pins for the `repro.obs` telemetry refactor.

The fixtures under ``tests/golden/`` were captured from the
pre-refactor metrics code (see ``tests/golden_builders.py``).  These
tests re-run the same fixed-seed workloads against the current code and
assert the summary dicts, every table rendering, the BENCH JSON bytes
and the simulated cycle totals are **bit-identical** — the acceptance
bar for ISSUE 10's Part A (and the cycles pin doubles as the
"tracing off changes nothing" guarantee).
"""

from __future__ import annotations

import json

import pytest

from . import golden_builders as gb


def _load(name: str) -> dict:
    path = gb.GOLDEN_DIR / f"{name}.json"
    return json.loads(path.read_text())


@pytest.mark.parametrize("name", sorted(gb.STREAM_BUILDERS))
def test_stream_golden_parity(name):
    golden = _load(name)
    live = gb.capture_stream(gb.STREAM_BUILDERS[name]())
    assert set(live) == set(golden)
    for key in sorted(golden):
        assert live[key] == golden[key], f"{name}:{key} drifted from golden"


def test_serve_golden_parity():
    golden = _load("serve_synthetic")
    live = gb.capture_serve(gb.build_serve_synthetic())
    assert set(live) == set(golden)
    for key in sorted(golden):
        assert live[key] == golden[key], f"serve:{key} drifted from golden"


def test_bench_payload_bytes(tmp_path):
    golden = (gb.GOLDEN_DIR / "bench_payload.json").read_text()
    assert gb.capture_bench_payload(tmp_path) == golden


def test_cycles_identical_with_tracing_off():
    """The golden totals pin simulated cycles; a trace-capable build
    must charge exactly these cycles when tracing is off."""
    for name, builder in sorted(gb.STREAM_BUILDERS.items()):
        golden = json.loads(_load(name)["summary"])
        assert builder().total_cycles == golden["total_cycles"], name
