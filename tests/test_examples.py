"""Smoke tests keeping the runnable examples honest: each cheap example
main() must execute without error (the figure-sweep examples are
exercised through their underlying `repro.bench.figures` functions in
test_bench.py instead — their full sweeps are too slow for unit tests)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv=()):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "all theorem checks passed" in out

    def test_tree_rewrite(self, capsys):
        run_example("tree_rewrite.py")
        out = capsys.readouterr().out
        assert "FOL*-filtered parallel rewriting" in out
        assert "corrupted in" in out

    def test_auto_vectorize(self, capsys):
        run_example("auto_vectorize.py")
        out = capsys.readouterr().out
        assert "shared_fol1" in out
        assert "results agree" in out

    def test_gc_and_maze(self, capsys):
        run_example("gc_and_maze.py")
        out = capsys.readouterr().out
        assert "structure intact  : True" in out
        assert "path length" in out

    def test_graph_components(self, capsys):
        run_example("graph_components.py")
        out = capsys.readouterr().out
        assert "networkx agrees" in out

    @pytest.mark.parametrize("name", [
        "hashing_load_factor.py",
        "sorting_table1.py",
        "bst_fig14.py",
    ])
    def test_figure_examples_quick_mode(self, name, capsys):
        run_example(name, argv=["--quick"])
        assert capsys.readouterr().out  # produced a report
