"""Fuzzing the vectorizing transformation: randomly generated loops must
behave *identically* under sequential and vectorized execution.

The generator builds straight-line loops from the IR's full expression
grammar (constants, the lane index, inputs, Lets, all six operators,
reads from a read-only region, RMW reads of the stored region) with one
store that is either lane-affine (independent plan) or data-dependent
(ordered-FOL1 plan), optionally guarded.  Every generated program is a
theorem: ``run_vectorized ≡ run_sequential`` on the whole memory image.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import (
    BinOp,
    Const,
    Input,
    Lane,
    Let,
    Load,
    Loop,
    Store,
    Var,
    run_sequential,
    run_vectorized,
)
from repro.machine import CostModel, Memory, ScalarProcessor, VectorMachine

N_LANES = 24
INPUT_NAMES = ("p", "q")
OUT_BASE, SRC_BASE, WORK_BASE = 100, 300, 2000
REGION_SIZE = 64


@st.composite
def exprs(draw, depth=0, allow_rmw_addr=None):
    """Random value expression (loads allowed from 'src' anywhere and
    from 'out' only at the RMW address, mirroring the classifier's
    rules)."""
    leaf_choices = ["const", "lane", "input"]
    if depth >= 3:
        kind = draw(st.sampled_from(leaf_choices))
    else:
        kind = draw(st.sampled_from(leaf_choices + ["binop", "load_src"] +
                                    (["load_rmw"] if allow_rmw_addr is not None else [])))
    if kind == "const":
        return Const(draw(st.integers(0, 20)))
    if kind == "lane":
        return Lane()
    if kind == "input":
        return Input(draw(st.sampled_from(INPUT_NAMES)))
    if kind == "binop":
        op = draw(st.sampled_from(["+", "-", "*", "//", "%", "&"]))
        left = draw(exprs(depth=depth + 1, allow_rmw_addr=allow_rmw_addr))
        if op in ("//", "%"):
            right = Const(draw(st.integers(1, 7)))
        else:
            right = draw(exprs(depth=depth + 1, allow_rmw_addr=allow_rmw_addr))
        return BinOp(op, left, right)
    if kind == "load_src":
        # src addresses stay in range via a final mod
        addr = draw(exprs(depth=depth + 1, allow_rmw_addr=None))
        return Load("src", BinOp("%", addr, Const(REGION_SIZE)))
    # load_rmw: read the stored region at exactly the store address
    return Load("out", allow_rmw_addr)


@st.composite
def loops(draw):
    """A random loop: some Lets, one store (affine or shared), maybe a
    guard.  Returns (loop, store_kind)."""
    shared = draw(st.booleans())
    if shared:
        addr = BinOp("%", Input(draw(st.sampled_from(INPUT_NAMES))),
                     Const(REGION_SIZE))
    else:
        addr = Lane()

    body = []
    n_lets = draw(st.integers(0, 2))
    let_names = []
    for i in range(n_lets):
        name = f"t{i}"
        body.append(Let(name, draw(exprs(allow_rmw_addr=None))))
        let_names.append(name)

    value = draw(exprs(allow_rmw_addr=addr if shared else None))
    if let_names and draw(st.booleans()):
        value = BinOp("+", value, Var(draw(st.sampled_from(let_names))))

    guard = None
    if draw(st.booleans()):
        guard = BinOp("%", BinOp("+", Lane(), Input(draw(st.sampled_from(INPUT_NAMES)))),
                      Const(2))

    body.append(Store("out", addr, value, guard=guard))
    return Loop(body=body, inputs=INPUT_NAMES), ("shared" if shared else "affine")


@settings(max_examples=120, deadline=None)
@given(
    prog=loops(),
    p=st.lists(st.integers(0, 200), min_size=N_LANES, max_size=N_LANES),
    q=st.lists(st.integers(0, 200), min_size=N_LANES, max_size=N_LANES),
    seed=st.integers(0, 7),
)
def test_random_loops_vectorize_exactly(prog, p, q, seed):
    loop, kind = prog
    inputs = {
        "p": np.asarray(p, dtype=np.int64),
        "q": np.asarray(q, dtype=np.int64),
    }
    regions = {"out": OUT_BASE, "src": SRC_BASE}

    vm = VectorMachine(Memory(4096, cost_model=CostModel.free(), seed=seed))
    sm = Memory(4096, cost_model=CostModel.free(), seed=seed)
    # identical pre-seeded src region and out region contents
    rng = np.random.default_rng(99)
    src = rng.integers(0, 50, size=REGION_SIZE)
    out0 = rng.integers(0, 50, size=REGION_SIZE)
    for mem in (vm.mem, sm):
        mem.words[SRC_BASE : SRC_BASE + REGION_SIZE] = src
        mem.words[OUT_BASE : OUT_BASE + REGION_SIZE] = out0

    run_vectorized(vm, loop, N_LANES, inputs, regions,
                   work_offset=WORK_BASE - OUT_BASE)
    run_sequential(ScalarProcessor(sm), loop, N_LANES, inputs, regions)

    assert np.array_equal(
        vm.mem.peek_range(OUT_BASE, REGION_SIZE),
        sm.peek_range(OUT_BASE, REGION_SIZE),
    ), f"{kind} loop diverged: {loop.body}"
    # the read-only region must be untouched by both
    assert np.array_equal(vm.mem.peek_range(SRC_BASE, REGION_SIZE), src)
    assert np.array_equal(sm.peek_range(SRC_BASE, REGION_SIZE), src)
