"""Tests for the vectorized hash join."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.join import (
    JoinWorkspace,
    join_multiset,
    scalar_hash_join,
    vector_hash_join,
)
from repro.errors import ReproError
from repro.machine import CONFLICT_POLICIES, CostModel, Memory, ScalarProcessor, VectorMachine
from repro.mem import BumpAllocator


def build(table_size=13, capacity=256, seed=0):
    vm = VectorMachine(
        Memory(2 * table_size + 2 * capacity + 64,
               cost_model=CostModel.free(), seed=seed)
    )
    ws = JoinWorkspace(BumpAllocator(vm.mem), table_size, capacity)
    return vm, ws


def oracle_join(build_keys, probe_keys):
    """Dictionary-based reference join."""
    index = {}
    for i, k in enumerate(build_keys):
        index.setdefault(int(k), []).append(i)
    pairs = []
    for j, k in enumerate(probe_keys):
        for i in index.get(int(k), []):
            pairs.append((i, j))
    return sorted(pairs)


class TestVectorJoin:
    def test_empty_both(self):
        vm, ws = build()
        r, s = vector_hash_join(vm, ws, np.array([], dtype=np.int64),
                                np.array([], dtype=np.int64))
        assert r.size == 0 and s.size == 0

    def test_empty_probe(self):
        vm, ws = build()
        r, s = vector_hash_join(vm, ws, np.array([1, 2]), np.array([], dtype=np.int64))
        assert r.size == 0

    def test_empty_build(self):
        vm, ws = build()
        r, s = vector_hash_join(vm, ws, np.array([], dtype=np.int64), np.array([1, 2]))
        assert r.size == 0

    def test_one_to_one(self):
        vm, ws = build()
        r, s = vector_hash_join(vm, ws, np.array([10, 20, 30]), np.array([20]))
        assert join_multiset(r, s) == [(1, 0)]

    def test_no_matches(self):
        vm, ws = build()
        r, s = vector_hash_join(vm, ws, np.array([1, 2]), np.array([3, 4]))
        assert r.size == 0

    def test_many_to_many(self):
        """Duplicate keys on both sides -> cross product per key."""
        vm, ws = build()
        r, s = vector_hash_join(vm, ws, np.array([7, 7, 9]), np.array([7, 7]))
        assert join_multiset(r, s) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_colliding_nonmatching_keys(self):
        """Keys in one chain but unequal (13 and 26 collide mod 13)."""
        vm, ws = build()
        r, s = vector_hash_join(vm, ws, np.array([13, 26]), np.array([26, 39]))
        assert join_multiset(r, s) == [(1, 0)]

    def test_capacity_guard(self):
        vm, ws = build(capacity=4)
        with pytest.raises(ReproError):
            vector_hash_join(vm, ws, np.arange(5, dtype=np.int64),
                             np.array([], dtype=np.int64))

    @pytest.mark.parametrize("policy", CONFLICT_POLICIES)
    def test_policies(self, policy):
        rng = np.random.default_rng(1)
        bk = rng.integers(0, 40, size=60)
        pk = rng.integers(0, 40, size=50)
        vm, ws = build(seed=5)
        r, s = vector_hash_join(vm, ws, bk, pk, policy=policy)
        assert join_multiset(r, s) == oracle_join(bk, pk)


class TestScalarJoin:
    def test_matches_oracle(self):
        rng = np.random.default_rng(2)
        bk = rng.integers(0, 30, size=40)
        pk = rng.integers(0, 30, size=35)
        vm, ws = build()
        sp = ScalarProcessor(vm.mem)
        r, s = scalar_hash_join(sp, ws, bk, pk)
        assert join_multiset(r, s) == oracle_join(bk, pk)


@settings(max_examples=40, deadline=None)
@given(
    bk=st.lists(st.integers(0, 60), max_size=60),
    pk=st.lists(st.integers(0, 60), max_size=60),
    seed=st.integers(0, 5),
)
def test_join_property(bk, pk, seed):
    """Vector join == scalar join == dictionary oracle, any duplication."""
    bk = np.asarray(bk, dtype=np.int64)
    pk = np.asarray(pk, dtype=np.int64)
    vm, ws = build(seed=seed)
    r, s = vector_hash_join(vm, ws, bk, pk)
    assert join_multiset(r, s) == oracle_join(bk, pk)

    vm2, ws2 = build(seed=seed)
    r2, s2 = scalar_hash_join(ScalarProcessor(vm2.mem), ws2, bk, pk)
    assert join_multiset(r2, s2) == oracle_join(bk, pk)
