"""Tests for distribution counting sort (§4.2 / Table 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.machine import CONFLICT_POLICIES, CostModel, Memory, ScalarProcessor, VectorMachine
from repro.mem import BumpAllocator
from repro.sorting import (
    DistributionWorkspace,
    scalar_distribution_sort,
    vector_distribution_sort,
)

RANGE = 64  # small range -> heavy duplication under hypothesis


def build(key_range=RANGE, n_max=128, seed=0):
    vm = VectorMachine(
        Memory(2 * key_range + n_max + 64, cost_model=CostModel.free(), seed=seed)
    )
    ws = DistributionWorkspace(BumpAllocator(vm.mem), key_range, n_max=n_max)
    return vm, ws


class TestBasics:
    def test_empty(self):
        vm, ws = build()
        out = vector_distribution_sort(vm, ws, np.array([], dtype=np.int64))
        assert out.size == 0

    def test_simple(self):
        vm, ws = build()
        out = vector_distribution_sort(vm, ws, np.array([5, 1, 3, 1]))
        assert np.array_equal(out, [1, 1, 3, 5])

    def test_all_identical(self):
        vm, ws = build()
        a = np.full(30, 7, dtype=np.int64)
        assert np.array_equal(vector_distribution_sort(vm, ws, a), a)

    def test_full_range_permutation(self):
        vm, ws = build(n_max=RANGE)
        a = np.random.default_rng(0).permutation(RANGE).astype(np.int64)
        assert np.array_equal(vector_distribution_sort(vm, ws, a), np.arange(RANGE))

    def test_boundary_keys(self):
        vm, ws = build()
        out = vector_distribution_sort(vm, ws, np.array([RANGE - 1, 0, RANGE - 1]))
        assert np.array_equal(out, [0, RANGE - 1, RANGE - 1])

    def test_out_of_range_rejected(self):
        vm, ws = build()
        with pytest.raises(ReproError):
            vector_distribution_sort(vm, ws, np.array([RANGE]))
        with pytest.raises(ReproError):
            vector_distribution_sort(vm, ws, np.array([-1]))

    def test_capacity_rejected(self):
        vm, ws = build(n_max=4)
        with pytest.raises(ReproError):
            vector_distribution_sort(vm, ws, np.zeros(5, dtype=np.int64))


class TestScalar:
    def test_simple(self):
        vm, ws = build()
        sp = ScalarProcessor(vm.mem)
        out = scalar_distribution_sort(sp, ws, np.array([5, 1, 3, 1]))
        assert np.array_equal(out, [1, 1, 3, 5])

    def test_counts_consistency_check(self):
        """The internal count-total check must pass on valid input."""
        vm, ws = build()
        sp = ScalarProcessor(vm.mem)
        a = np.random.default_rng(1).integers(0, RANGE, size=100)
        out = scalar_distribution_sort(sp, ws, a)
        assert np.array_equal(out, np.sort(a))


@settings(max_examples=60, deadline=None)
@given(
    a=st.lists(st.integers(0, RANGE - 1), min_size=0, max_size=100),
    seed=st.integers(0, 5),
    policy=st.sampled_from(CONFLICT_POLICIES),
)
def test_vector_property(a, seed, policy):
    """Sorted output, exact multiset, any duplication pattern/policy."""
    a = np.asarray(a, dtype=np.int64)
    vm, ws = build(seed=seed)
    out = vector_distribution_sort(vm, ws, a, policy=policy)
    assert np.array_equal(out, np.sort(a))


@settings(max_examples=25, deadline=None)
@given(a=st.lists(st.integers(0, RANGE - 1), min_size=0, max_size=80))
def test_scalar_vector_agree(a):
    a = np.asarray(a, dtype=np.int64)
    vm, ws = build()
    out_v = vector_distribution_sort(vm, ws, a)
    vm2, ws2 = build()
    out_s = scalar_distribution_sort(ScalarProcessor(vm2.mem), ws2, a)
    assert np.array_equal(out_v, out_s)


class TestWorkspaceValidation:
    def test_bad_range(self, alloc):
        with pytest.raises(ValueError):
            DistributionWorkspace(alloc, key_range=0)

    def test_bad_capacity(self, alloc):
        with pytest.raises(ValueError):
            DistributionWorkspace(alloc, key_range=8, n_max=0)
