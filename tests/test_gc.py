"""Tests for the vectorized copying garbage collector (§5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import CopyingHeap, scalar_collect, vector_collect
from repro.lists.cells import encode_atom
from repro.machine import CONFLICT_POLICIES, CostModel, Memory, ScalarProcessor, VectorMachine
from repro.mem import NIL, BumpAllocator


def build(capacity=256, seed=0):
    vm = VectorMachine(
        Memory(8 * capacity + 64, cost_model=CostModel.free(), seed=seed)
    )
    heap = CopyingHeap(BumpAllocator(vm.mem), capacity)
    return vm, heap


class TestBasics:
    def test_single_cell(self):
        vm, h = build()
        c = h.cons(encode_atom(5), NIL)
        h.add_root(c)
        copied, _ = vector_collect(vm, h)
        assert copied == 1
        new = h.memory.peek(h.root_base)
        assert h.to_cells.contains(new)
        assert h.to_cells.peek_field(new, "car") == encode_atom(5)

    def test_garbage_not_copied(self):
        vm, h = build()
        live = h.cons(encode_atom(1), NIL)
        h.cons(encode_atom(99), NIL)  # unreachable
        h.add_root(live)
        copied, _ = vector_collect(vm, h)
        assert copied == 1

    def test_atom_root_untouched(self):
        vm, h = build()
        slot = h.add_root(encode_atom(7))
        copied, _ = vector_collect(vm, h)
        assert copied == 0
        assert h.memory.peek(slot) == encode_atom(7)

    def test_nil_root(self):
        vm, h = build()
        h.add_root(NIL)
        copied, _ = vector_collect(vm, h)
        assert copied == 0

    def test_no_roots(self):
        vm, h = build()
        h.cons(encode_atom(1), NIL)
        copied, waves = vector_collect(vm, h)
        assert copied == 0


class TestSharingAndCycles:
    def test_shared_cell_copied_once(self):
        vm, h = build()
        shared = h.cons(encode_atom(9), NIL)
        a = h.cons(encode_atom(1), shared)
        b = h.cons(encode_atom(2), shared)
        h.add_root(a)
        h.add_root(b)
        copied, _ = vector_collect(vm, h)
        assert copied == 3  # a, b, shared (once)
        # sharing preserved: both copies' cdr point at the same cell
        na = h.memory.peek(h.root_base)
        nb = h.memory.peek(h.root_base + 1)
        assert h.to_cells.peek_field(na, "cdr") == h.to_cells.peek_field(nb, "cdr")

    def test_self_cycle(self):
        vm, h = build()
        c = h.cons(encode_atom(1), NIL)
        h.from_cells.poke_field(c, "cdr", c)
        h.add_root(c)
        copied, _ = vector_collect(vm, h)
        assert copied == 1
        new = h.memory.peek(h.root_base)
        assert h.to_cells.peek_field(new, "cdr") == new  # cycle preserved

    def test_two_cell_cycle(self):
        vm, h = build()
        a = h.cons(encode_atom(1), NIL)
        b = h.cons(encode_atom(2), a)
        h.from_cells.poke_field(a, "cdr", b)
        h.add_root(a)
        copied, _ = vector_collect(vm, h)
        assert copied == 2
        na = h.memory.peek(h.root_base)
        nb = h.to_cells.peek_field(na, "cdr")
        assert h.to_cells.peek_field(nb, "cdr") == na

    def test_many_roots_same_cell(self):
        """The S1-only election: 8 roots to one cell -> one copy."""
        vm, h = build()
        c = h.cons(encode_atom(3), NIL)
        slots = [h.add_root(c) for _ in range(8)]
        copied, _ = vector_collect(vm, h)
        assert copied == 1
        news = {h.memory.peek(s) for s in slots}
        assert len(news) == 1  # all redirected to the same copy


def random_heap(heap, rng, n_cells, root_count):
    ptrs = []
    for _ in range(n_cells):
        car = (int(rng.choice(ptrs)) if ptrs and rng.random() < 0.4
               else encode_atom(int(rng.integers(0, 100))))
        cdr = int(rng.choice(ptrs)) if ptrs and rng.random() < 0.6 else NIL
        ptrs.append(heap.cons(car, cdr))
    for p in rng.choice(ptrs, size=min(root_count, len(ptrs)), replace=False):
        heap.add_root(int(p))


@settings(max_examples=30, deadline=None)
@given(
    n_cells=st.integers(1, 60),
    root_count=st.integers(1, 6),
    seed=st.integers(0, 7),
    policy=st.sampled_from(CONFLICT_POLICIES),
)
def test_structure_preserved_property(n_cells, root_count, seed, policy):
    """The reachable graph (including sharing and cycles) is isomorphic
    before and after collection, for random heaps and any policy."""
    vm, h = build(capacity=n_cells + 4, seed=seed)
    random_heap(h, np.random.default_rng(seed), n_cells, root_count)
    before = h.structure_signature(h.roots(), h.from_cells)
    vector_collect(vm, h, policy=policy)
    after = h.structure_signature(h.roots(), h.to_cells)
    assert before == after


@settings(max_examples=20, deadline=None)
@given(n_cells=st.integers(1, 50), seed=st.integers(0, 7))
def test_scalar_vector_copy_same_count(n_cells, seed):
    vm, h = build(capacity=n_cells + 4, seed=seed)
    random_heap(h, np.random.default_rng(seed), n_cells, 3)
    copied_v, _ = vector_collect(vm, h)

    vm2, h2 = build(capacity=n_cells + 4, seed=seed)
    random_heap(h2, np.random.default_rng(seed), n_cells, 3)
    copied_s = scalar_collect(ScalarProcessor(vm2.mem), h2)
    assert copied_v == copied_s
    after = h2.structure_signature(
        h2.roots(), h2.to_cells
    )
    assert after == h.structure_signature(h.roots(), h.to_cells)
