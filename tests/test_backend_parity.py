"""Cross-backend parity: sim and native runs end bit-identical.

The backend layer's contract is that a :class:`~repro.backend.Backend`
changes *how fast* a workload runs, never *what it computes*: under a
fixed seed the ``"arbitrary"`` conflict policy draws the same
permutations on every backend (both funnel through
``Memory._raw_scatter``), so winner choices — and therefore every
downstream pointer, chain, tree and sort slot — match exactly.  This
suite proves it end-to-end:

* per-kind and full-mix closed-loop streams: identical machine-state
  fingerprints, batch counts and round totals across ``sim``,
  ``native`` (recorded loop) and ``native --no-recorded-loop``;
* retry mode (``carryover=False``, the paper's in-batch loop);
* K=4 sharded runs: identical coordinator fingerprints, merged end
  states and cross-shard transfer counts;
* the scalar differential oracles accept the native end states;
* registry/CLI validation: unknown backends fail with the registered
  list, cycle-only flags are rejected on ``native`` with exit 2;
* the plan IR itself: op shapes, scalar-tail placement, validation.
"""

import numpy as np
import pytest

from repro.__main__ import main
from repro.audit import diff_stream_state
from repro.backend import (
    Backend,
    backend_summaries,
    get_backend,
    registered_backends,
    resolve_backend,
)
from repro.backend.native import NativeBackend
from repro.backend.plan import (
    Commit,
    CompareLabels,
    FilterSurvivors,
    FolPlan,
    GatherBack,
    LoopUntilEmpty,
    ScatterLabels,
    identity_live,
)
from repro.errors import ReproError
from repro.runtime import FixedBatcher, StreamService, closed_loop_workload
from repro.shard import ShardCoordinator

KINDS = ("hash", "bst", "list", "xfer", "sort")
TABLE_SIZE = 127
N_CELLS = 32
KEY_SPACE = 512


def _backends():
    """The three execution arms under test."""
    return (
        ("sim", get_backend("sim")),
        ("native-recorded", NativeBackend(recorded_loop=True)),
        ("native-interpreted", NativeBackend(recorded_loop=False)),
    )


def run_stream(kinds, backend, *, carryover=True, n=400, seed=123, skew=1.1):
    rng = np.random.default_rng(seed)
    reqs = closed_loop_workload(
        rng, n, kinds=kinds, skew=skew, key_space=KEY_SPACE, n_cells=N_CELLS
    )
    svc = StreamService.for_workload(
        reqs,
        batcher=FixedBatcher(batch_size=64),
        table_size=TABLE_SIZE,
        n_cells=N_CELLS,
        carryover=carryover,
        backend=backend,
    )
    metrics = svc.run(reqs)
    return svc, reqs, metrics


# ----------------------------------------------------------------------
# registry surface
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_backends_registered(self):
        assert registered_backends() == ("sim", "native")

    def test_unknown_backend_names_registry(self):
        with pytest.raises(ReproError) as err:
            get_backend("cuda")
        message = str(err.value)
        for name in registered_backends():
            assert name in message

    def test_resolve_accepts_name_and_instance(self):
        inst = NativeBackend(recorded_loop=False)
        assert resolve_backend(inst) is inst
        assert isinstance(resolve_backend("sim"), Backend)

    def test_calibration_flags(self):
        assert get_backend("sim").calibrated
        assert not get_backend("native").calibrated

    def test_summaries_cover_every_backend(self):
        rows = backend_summaries()
        assert [name for name, _, _ in rows] == list(registered_backends())
        assert all(doc for _, _, doc in rows)

    def test_native_rejects_cost_model_override(self):
        from repro import CostModel

        with pytest.raises(ReproError, match="cost_model"):
            get_backend("native").make_machine(
                1024, cost_model=CostModel.s810()
            )


# ----------------------------------------------------------------------
# end-state parity, single pipeline
# ----------------------------------------------------------------------
class TestStreamParity:
    @pytest.mark.parametrize("kind", KINDS)
    def test_per_kind_carryover(self, kind):
        runs = {
            name: run_stream((kind,), backend)
            for name, backend in _backends()
        }
        svc_sim, _, m_sim = runs["sim"]
        ref = svc_sim.executor.state_fingerprint()
        for name, (svc, reqs, metrics) in runs.items():
            assert svc.executor.state_fingerprint() == ref, name
            assert len(metrics.batches) == len(m_sim.batches), name
            assert metrics.total_rounds == m_sim.total_rounds, name
            assert diff_stream_state(
                svc.executor, reqs,
                table_size=TABLE_SIZE, n_cells=N_CELLS, key_space=KEY_SPACE,
            ) is None, name

    @pytest.mark.parametrize("kind", KINDS)
    def test_per_kind_retry_mode(self, kind):
        fingerprints = {}
        for name, backend in _backends():
            svc, _, _ = run_stream((kind,), backend, carryover=False, n=300)
            fingerprints[name] = svc.executor.state_fingerprint()
        assert len(set(fingerprints.values())) == 1, fingerprints

    def test_full_mix_carryover(self):
        fingerprints = {}
        rounds = {}
        for name, backend in _backends():
            svc, reqs, metrics = run_stream(KINDS, backend, n=500)
            fingerprints[name] = svc.executor.state_fingerprint()
            rounds[name] = metrics.total_rounds
            assert diff_stream_state(
                svc.executor, reqs,
                table_size=TABLE_SIZE, n_cells=N_CELLS, key_space=KEY_SPACE,
            ) is None, name
        assert len(set(fingerprints.values())) == 1, fingerprints
        assert len(set(rounds.values())) == 1, rounds

    def test_native_charges_no_cycles(self):
        svc, _, _ = run_stream(("hash",), get_backend("native"), n=200)
        assert svc.executor.vm.counter.total == 0.0
        assert svc.now == 0.0

    def test_sim_still_charges(self):
        svc, _, _ = run_stream(("hash",), get_backend("sim"), n=200)
        assert svc.executor.vm.counter.total > 0.0


# ----------------------------------------------------------------------
# end-state parity, K=4 shards
# ----------------------------------------------------------------------
class TestShardParity:
    def _run(self, backend):
        rng = np.random.default_rng(123)
        reqs = closed_loop_workload(
            rng, 400, kinds=KINDS, skew=1.1,
            key_space=KEY_SPACE, n_cells=N_CELLS,
        )
        coord = ShardCoordinator.for_workload(
            reqs, shards=4, partitioner="hash",
            table_size=TABLE_SIZE, n_cells=N_CELLS, key_space=KEY_SPACE,
            backend=backend,
        )
        svc = StreamService(coord, batcher=FixedBatcher(batch_size=64))
        metrics = svc.run(reqs)
        return coord, metrics

    def test_k4_parity(self):
        ref = None
        for name, backend in _backends():
            coord, metrics = self._run(backend)
            state = (
                coord.state_fingerprint(),
                coord.total_cross,
                len(metrics.batches),
                coord.chain_multisets(),
                coord.bst_inorder(),
                coord.list_values(),
            )
            if ref is None:
                ref = state
            else:
                assert state == ref, name

    def test_native_shard_counters_stay_zero(self):
        coord, _ = self._run(get_backend("native"))
        assert all(
            w.executor.vm.counter.total == 0.0 for w in coord.workers
        )
        assert coord.backend.name == "native"


# ----------------------------------------------------------------------
# CLI validation
# ----------------------------------------------------------------------
class TestCli:
    def test_native_stream_runs(self, capsys):
        rc = main([
            "stream", "--requests", "60", "--closed-loop",
            "--policy", "fixed", "--backend", "native",
            "--mix", "hash=1,xfer=1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "backend=native" in out
        assert "requests/sec" in out

    def test_unknown_backend_exits_2_listing_backends(self, capsys):
        rc = main(["stream", "--requests", "10", "--backend", "vulkan"])
        err = capsys.readouterr().err
        assert rc == 2
        for name in registered_backends():
            assert name in err

    def test_native_rejects_trace(self, capsys):
        rc = main([
            "stream", "--requests", "10", "--backend", "native", "--trace",
        ])
        assert rc == 2
        assert "instruction mix" in capsys.readouterr().err

    def test_native_rejects_deadline_policy(self, capsys):
        rc = main([
            "stream", "--requests", "10", "--backend", "native",
            "--policy", "deadline",
        ])
        assert rc == 2
        assert "deadline" in capsys.readouterr().err

    def test_no_recorded_loop_requires_native(self, capsys):
        rc = main(["stream", "--requests", "10", "--no-recorded-loop"])
        assert rc == 2
        assert "native" in capsys.readouterr().err

    def test_info_lists_backends(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "backends:" in out
        for name in registered_backends():
            assert name in out


# ----------------------------------------------------------------------
# the plan IR
# ----------------------------------------------------------------------
class TestPlanIR:
    def _plan(self, arity=1, n=4):
        return FolPlan(
            kind="hash",  # no-kind-lint
            arity=arity,
            policy="arbitrary",
            work_offset=100,
            addrs=[np.arange(n, dtype=np.int64) for _ in range(arity)],
            commit=lambda ops, s: None,
            group_of=lambda i: i,
            measure=np.arange(n, dtype=np.int64),
            live=identity_live(n),
        )

    def test_round_ops_shape(self):
        ops = self._plan().round_ops()
        assert [type(op) for op in ops] == [
            ScatterLabels, GatherBack, CompareLabels, FilterSurvivors,
        ]
        scatter = ops[0]
        assert scatter.work_offset == 100
        assert scatter.policy == "arbitrary"
        assert not scatter.scalar_tail

    def test_scalar_tail_set_for_tuple_plans(self):
        ops = self._plan(arity=2).round_ops()
        assert ops[0].scalar_tail  # §3.3 deadlock remedy

    def test_program_carryover_vs_retry(self):
        plan = self._plan()
        carry = plan.program(carryover=True)
        assert isinstance(carry[-1], Commit)
        retry = plan.program(carryover=False)
        assert len(retry) == 1 and isinstance(retry[0], LoopUntilEmpty)
        assert isinstance(retry[0].body[-1], Commit)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ReproError, match="arity"):
            FolPlan(
                kind="hash",  # no-kind-lint
                arity=2,
                policy="arbitrary",
                work_offset=0,
                addrs=[np.arange(3, dtype=np.int64)],
                commit=lambda ops, s: None,
                group_of=lambda i: i,
                measure=np.arange(3, dtype=np.int64),
                live=identity_live(3),
            )

    def test_lane_count_mismatch_rejected(self):
        with pytest.raises(ReproError, match="lanes"):
            FolPlan(
                kind="hash",  # no-kind-lint
                arity=1,
                policy="arbitrary",
                work_offset=0,
                addrs=[np.arange(5, dtype=np.int64)],
                commit=lambda ops, s: None,
                group_of=lambda i: i,
                measure=np.arange(5, dtype=np.int64),
                live=identity_live(3),
            )

    def test_recorded_round_rejects_foreign_program(self):
        from repro.backend.native import compile_round

        with pytest.raises(ReproError, match="op shape"):
            compile_round((Commit("hash"),))  # no-kind-lint

    def test_recorded_round_cache_is_per_shape(self):
        backend = NativeBackend()
        p1 = self._plan()
        fn = backend._recorded(p1)
        assert backend._recorded(self._plan()) is fn
        p2 = self._plan(arity=2)
        assert backend._recorded(p2) is not fn
