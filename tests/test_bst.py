"""Tests for BST multi-insertion (§4.3 / Figure 14)."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import CONFLICT_POLICIES, CostModel, Memory, ScalarProcessor, VectorMachine
from repro.mem import BumpAllocator
from repro.trees import BinarySearchTree, scalar_bst_insert, vector_bst_insert


def build(capacity=1024, seed=0):
    vm = VectorMachine(
        Memory(3 * capacity + 64, cost_model=CostModel.free(), seed=seed)
    )
    tree = BinarySearchTree(BumpAllocator(vm.mem), capacity)
    return vm, tree


class TestTreeStructure:
    def test_build_and_inorder(self):
        _, tree = build()
        tree.build([5, 3, 8, 1])
        assert tree.inorder() == [1, 3, 5, 8]
        assert tree.size() == 4

    def test_empty_tree(self):
        _, tree = build()
        assert tree.inorder() == []
        assert tree.depth() == 0

    def test_depth_degenerate(self):
        _, tree = build()
        tree.build(range(10))  # ascending -> right spine
        assert tree.depth() == 10

    def test_invariant_check(self):
        _, tree = build()
        tree.build([2, 1, 3])
        tree.check_bst_invariant()


class TestVectorInsert:
    def test_into_empty_tree(self):
        vm, tree = build()
        vector_bst_insert(vm, tree, np.array([5, 3, 8]))
        assert tree.inorder() == [3, 5, 8]
        tree.check_bst_invariant()

    def test_empty_key_vector(self):
        vm, tree = build()
        assert vector_bst_insert(vm, tree, np.array([], dtype=np.int64)) == 0

    def test_single_key(self):
        vm, tree = build()
        vector_bst_insert(vm, tree, np.array([42]))
        assert tree.inorder() == [42]

    def test_all_identical_keys(self):
        """Duplicates descend right; all must be inserted."""
        vm, tree = build()
        vector_bst_insert(vm, tree, np.full(16, 9, dtype=np.int64))
        assert tree.inorder() == [9] * 16
        tree.check_bst_invariant()

    def test_into_prebuilt_tree(self):
        vm, tree = build()
        tree.build([50, 25, 75])
        vector_bst_insert(vm, tree, np.array([10, 30, 60, 90]))
        assert tree.inorder() == [10, 25, 30, 50, 60, 75, 90]

    def test_ascending_keys(self):
        vm, tree = build()
        vector_bst_insert(vm, tree, np.arange(64, dtype=np.int64))
        assert tree.inorder() == list(range(64))

    @pytest.mark.parametrize("policy", CONFLICT_POLICIES)
    def test_policies(self, policy):
        vm, tree = build(seed=11)
        keys = np.random.default_rng(2).integers(0, 100, size=120)
        vector_bst_insert(vm, tree, keys, policy=policy)
        tree.check_bst_invariant()
        assert Counter(tree.inorder()) == Counter(keys.tolist())


class TestScalarInsert:
    def test_matches_build(self):
        vm, t1 = build()
        sp = ScalarProcessor(vm.mem)
        scalar_bst_insert(sp, t1, [5, 3, 8, 3])
        _, t2 = build()
        t2.build([5, 3, 8, 3])
        assert t1.inorder() == t2.inorder()


@settings(max_examples=40, deadline=None)
@given(
    initial=st.lists(st.integers(0, 200), min_size=0, max_size=40),
    inserts=st.lists(st.integers(0, 200), min_size=0, max_size=60),
    seed=st.integers(0, 5),
)
def test_vector_insert_property(initial, inserts, seed):
    """BST invariant + exact key multiset after vector insertion into an
    arbitrary pre-built tree, with arbitrary duplicate patterns."""
    vm, tree = build(seed=seed)
    tree.build(initial)
    vector_bst_insert(vm, tree, np.asarray(inserts, dtype=np.int64))
    tree.check_bst_invariant()
    assert Counter(tree.inorder()) == Counter(initial + inserts)


@settings(max_examples=25, deadline=None)
@given(
    inserts=st.lists(st.integers(0, 50), min_size=1, max_size=50),
    seed=st.integers(0, 5),
)
def test_scalar_vector_same_multiset(inserts, seed):
    """Tree *shapes* may differ (insertion order differs) but the key
    multisets and the BST invariant must both hold."""
    vm, vt = build(seed=seed)
    vector_bst_insert(vm, vt, np.asarray(inserts, dtype=np.int64))
    vt.check_bst_invariant()

    vm2, st_tree = build(seed=seed)
    scalar_bst_insert(ScalarProcessor(vm2.mem), st_tree, inserts)
    st_tree.check_bst_invariant()

    assert Counter(vt.inorder()) == Counter(st_tree.inorder())
