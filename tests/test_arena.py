"""Unit tests for region allocation and record arenas."""

import numpy as np
import pytest

from repro.errors import AllocationError
from repro.mem import NIL, BumpAllocator, RecordArena


class TestBumpAllocator:
    def test_word_zero_reserved_for_nil(self, vm):
        alloc = BumpAllocator(vm.mem)
        base = alloc.alloc(4, "r")
        assert base == 1
        assert NIL == 0

    def test_regions_disjoint(self, vm):
        alloc = BumpAllocator(vm.mem)
        a = alloc.alloc(10, "a")
        b = alloc.alloc(10, "b")
        assert b >= a + 10

    def test_duplicate_name_rejected(self, vm):
        alloc = BumpAllocator(vm.mem)
        alloc.alloc(1, "x")
        with pytest.raises(AllocationError):
            alloc.alloc(1, "x")

    def test_out_of_memory(self, vm):
        alloc = BumpAllocator(vm.mem)
        with pytest.raises(AllocationError):
            alloc.alloc(vm.mem.size, "big")

    def test_negative_size(self, vm):
        alloc = BumpAllocator(vm.mem)
        with pytest.raises(AllocationError):
            alloc.alloc(-1, "neg")

    def test_used_free_accounting(self, vm):
        alloc = BumpAllocator(vm.mem)
        before = alloc.free
        alloc.alloc(100, "r")
        assert alloc.free == before - 100


class TestRecordArena:
    @pytest.fixture
    def arena(self, vm) -> RecordArena:
        return RecordArena(BumpAllocator(vm.mem), ("key", "next"), capacity=8)

    def test_alloc_one_distinct(self, arena):
        p1 = arena.alloc_one()
        p2 = arena.alloc_one()
        assert p1 != p2
        assert arena.allocated == 2

    def test_alloc_many_stride(self, arena):
        ptrs = arena.alloc_many(3)
        assert np.array_equal(np.diff(ptrs), [2, 2])

    def test_exhaustion(self, arena):
        arena.alloc_many(8)
        with pytest.raises(AllocationError):
            arena.alloc_one()
        with pytest.raises(AllocationError):
            arena.alloc_many(1)

    def test_alloc_many_negative(self, arena):
        with pytest.raises(AllocationError):
            arena.alloc_many(-1)

    def test_field_addressing(self, arena):
        p = arena.alloc_one()
        assert arena.field_addr(p, "key") == p
        assert arena.field_addr(p, "next") == p + 1
        with pytest.raises(AllocationError):
            arena.offset("nope")

    def test_field_addrs_vectorised(self, arena):
        ptrs = arena.alloc_many(3)
        assert np.array_equal(arena.field_addrs(ptrs, "next"), ptrs + 1)

    def test_poke_peek_field(self, arena):
        p = arena.alloc_one()
        arena.poke_field(p, "key", 42)
        assert arena.peek_field(p, "key") == 42

    def test_contains(self, arena):
        p = arena.alloc_one()
        assert arena.contains(p)
        assert not arena.contains(p + 1)  # mid-record
        assert not arena.contains(p + 2)  # unallocated record
        assert not arena.contains(NIL)

    def test_all_records(self, arena):
        ptrs = arena.alloc_many(4)
        assert np.array_equal(arena.all_records(), ptrs)

    def test_rejects_empty_fields(self, vm):
        with pytest.raises(AllocationError):
            RecordArena(BumpAllocator(vm.mem), (), capacity=4)

    def test_rejects_bad_capacity(self, vm):
        with pytest.raises(AllocationError):
            RecordArena(BumpAllocator(vm.mem), ("a",), capacity=0)
