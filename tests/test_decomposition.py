"""Unit tests for the decomposition result type and its validators."""

import numpy as np
import pytest

from repro.core.decomposition import (
    Decomposition,
    max_multiplicity,
    reference_decomposition,
)
from repro.errors import DecompositionError


def make(v, sets):
    return Decomposition(
        index_vector=np.asarray(v, dtype=np.int64),
        sets=[np.asarray(s, dtype=np.int64) for s in sets],
    )


class TestMaxMultiplicity:
    def test_empty(self):
        assert max_multiplicity(np.array([], dtype=np.int64)) == 0

    def test_no_duplicates(self):
        assert max_multiplicity(np.array([3, 1, 2])) == 1

    def test_counts_max(self):
        assert max_multiplicity(np.array([5, 5, 5, 7, 7])) == 3


class TestValidators:
    def test_good_decomposition_passes(self):
        make([5, 9, 5], [[0, 1], [2]]).validate()

    def test_missing_position(self):
        with pytest.raises(DecompositionError):
            make([5, 9, 5], [[0, 1]]).check_partition()

    def test_duplicated_position(self):
        with pytest.raises(DecompositionError):
            make([5, 9, 5], [[0, 1], [1, 2]]).check_partition()

    def test_out_of_range_position(self):
        with pytest.raises(DecompositionError):
            make([5, 9], [[0, 5]]).check_partition()

    def test_set_with_shared_address(self):
        with pytest.raises(DecompositionError):
            make([5, 9, 5], [[0, 2], [1]]).check_parallel_processable()

    def test_empty_set_rejected(self):
        with pytest.raises(DecompositionError):
            make([5], [[], [0]]).check_nonempty_sets()

    def test_increasing_cardinalities_rejected(self):
        """Theorem 3 check."""
        with pytest.raises(DecompositionError):
            make([5, 9, 5, 7], [[0], [1, 2, 3]]).check_monotone_cardinalities()

    def test_non_minimal_rejected(self):
        """Theorem 5 check: 3 sets for max multiplicity 2."""
        with pytest.raises(DecompositionError):
            make([5, 9, 5], [[0], [1], [2]]).check_minimal()

    def test_empty_input(self):
        make([], []).validate()

    def test_empty_input_with_sets_rejected(self):
        with pytest.raises(DecompositionError):
            make([], [[0]]).check_partition()


class TestAccessors:
    def test_m_n_cardinalities(self):
        d = make([5, 9, 5], [[0, 1], [2]])
        assert d.m == 2
        assert d.n == 3
        assert d.cardinalities() == [2, 1]

    def test_addresses(self):
        d = make([5, 9, 5], [[0, 1], [2]])
        assert np.array_equal(d.addresses(0), [5, 9])
        assert np.array_equal(d.addresses(1), [5])

    def test_iter(self):
        d = make([5, 9, 5], [[0, 1], [2]])
        assert len(list(d)) == 2


class TestReferenceDecomposition:
    def test_empty(self):
        assert reference_decomposition(np.array([], dtype=np.int64)).m == 0

    def test_no_duplicates_single_set(self):
        d = reference_decomposition(np.array([4, 2, 7]))
        assert d.m == 1
        d.validate()

    def test_by_occurrence_rank(self):
        d = reference_decomposition(np.array([5, 9, 5, 5]))
        assert d.m == 3
        assert np.array_equal(d.sets[0], [0, 1])  # first occurrences
        assert np.array_equal(d.sets[1], [2])
        assert np.array_equal(d.sets[2], [3])
        d.validate()

    def test_validates_on_random_input(self, rng):
        for _ in range(10):
            v = rng.integers(0, 20, size=rng.integers(1, 100))
            reference_decomposition(v).validate()
