"""Tests for vectorized maze routing (§5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import MazeGrid, check_path, scalar_route, vector_route
from repro.errors import ReproError
from repro.machine import CONFLICT_POLICIES, CostModel, Memory, ScalarProcessor, VectorMachine
from repro.mem import BumpAllocator


def build(grid, seed=0):
    grid = np.asarray(grid)
    vm = VectorMachine(
        Memory(4 * grid.size + 64, cost_model=CostModel.free(), seed=seed)
    )
    maze = MazeGrid(BumpAllocator(vm.mem), grid)
    return vm, maze


OPEN_3X3 = np.zeros((3, 3), dtype=int)


class TestBasics:
    def test_trivial_route(self):
        vm, m = build(OPEN_3X3)
        p = vector_route(vm, m, (0, 0), (2, 2))
        check_path(m, p, (0, 0), (2, 2))
        assert len(p) == 5  # manhattan distance + 1

    def test_source_equals_target(self):
        vm, m = build(OPEN_3X3)
        p = vector_route(vm, m, (1, 1), (1, 1))
        assert p == [(1, 1)]

    def test_unreachable(self):
        grid = np.zeros((3, 3), dtype=int)
        grid[:, 1] = 1  # vertical wall
        vm, m = build(grid)
        assert vector_route(vm, m, (0, 0), (0, 2)) is None

    def test_wall_endpoints_rejected(self):
        grid = np.zeros((3, 3), dtype=int)
        grid[1, 1] = 1
        vm, m = build(grid)
        with pytest.raises(ReproError):
            vector_route(vm, m, (1, 1), (2, 2))
        with pytest.raises(ReproError):
            vector_route(vm, m, (0, 0), (1, 1))

    def test_no_wraparound(self):
        """Row boundaries must not leak: a wall column blocks even
        though linear indices are adjacent across rows."""
        grid = np.zeros((2, 3), dtype=int)
        grid[0, 1] = 1
        grid[1, 1] = 1
        vm, m = build(grid)
        assert vector_route(vm, m, (0, 0), (0, 2)) is None

    def test_snake_corridor(self):
        grid = np.array([
            [0, 1, 0, 0, 0],
            [0, 1, 0, 1, 0],
            [0, 0, 0, 1, 0],
        ])
        vm, m = build(grid)
        p = vector_route(vm, m, (0, 0), (0, 4))
        check_path(m, p, (0, 0), (0, 4))
        vm2, m2 = build(grid)
        ps = scalar_route(ScalarProcessor(vm2.mem), m2, (0, 0), (0, 4))
        assert len(p) == len(ps)

    def test_distances_field(self):
        vm, m = build(OPEN_3X3)
        vector_route(vm, m, (0, 0), (2, 2))
        d = m.distances()
        assert d[0, 0] == 0
        assert d[2, 2] == 4

    def test_1d_grid_rejected(self, alloc):
        with pytest.raises(ReproError):
            MazeGrid(alloc, np.zeros(5, dtype=int))


class TestCheckPath:
    def test_rejects_wrong_endpoints(self):
        _, m = build(OPEN_3X3)
        with pytest.raises(ReproError):
            check_path(m, [(0, 0)], (0, 0), (2, 2))

    def test_rejects_disconnected(self):
        _, m = build(OPEN_3X3)
        with pytest.raises(ReproError):
            check_path(m, [(0, 0), (2, 2)], (0, 0), (2, 2))

    def test_rejects_wall_crossing(self):
        grid = np.zeros((1, 3), dtype=int)
        grid[0, 1] = 1
        _, m = build(grid)
        with pytest.raises(ReproError):
            check_path(m, [(0, 0), (0, 1), (0, 2)], (0, 0), (0, 2))


@settings(max_examples=30, deadline=None)
@given(
    h=st.integers(2, 12),
    w=st.integers(2, 12),
    density=st.floats(0.0, 0.45),
    seed=st.integers(0, 7),
    policy=st.sampled_from(CONFLICT_POLICIES),
)
def test_vector_matches_scalar_bfs(h, w, density, seed, policy):
    """Shortest-path lengths must equal sequential BFS on random grids;
    if one says unreachable, so must the other."""
    rng = np.random.default_rng(seed)
    grid = (rng.random((h, w)) < density).astype(int)
    grid[0, 0] = grid[h - 1, w - 1] = 0
    src, dst = (0, 0), (h - 1, w - 1)

    vm, m = build(grid, seed=seed)
    pv = vector_route(vm, m, src, dst, policy=policy)
    vm2, m2 = build(grid, seed=seed)
    ps = scalar_route(ScalarProcessor(vm2.mem), m2, src, dst)

    assert (pv is None) == (ps is None)
    if pv is not None:
        check_path(m, pv, src, dst)
        check_path(m2, ps, src, dst)
        assert len(pv) == len(ps)
