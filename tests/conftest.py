"""Shared fixtures: machine construction at both cost models.

Most functional tests run on the `free` cost model (zero cycle charges,
same code paths) so assertions never depend on calibration constants;
accounting tests use `s810` explicitly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import CostModel, Memory, ScalarProcessor, VectorMachine
from repro.mem import BumpAllocator


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def make_vm():
    """Factory: make_vm(size, cost='free'|'s810'|CostModel, seed=0)."""

    def _make(size: int = 4096, cost="free", seed: int = 0) -> VectorMachine:
        if cost == "free":
            cm = CostModel.free()
        elif cost == "s810":
            cm = CostModel.s810()
        else:
            cm = cost
        return VectorMachine(Memory(size, cost_model=cm, seed=seed))

    return _make


@pytest.fixture
def vm(make_vm) -> VectorMachine:
    """Default free-cost machine."""
    return make_vm()


@pytest.fixture
def s810_vm(make_vm) -> VectorMachine:
    """Machine with the calibrated cost model (for accounting tests)."""
    return make_vm(cost="s810")


@pytest.fixture
def sp(vm) -> ScalarProcessor:
    """Scalar unit bound to the same memory as ``vm``."""
    return ScalarProcessor(vm.mem)


@pytest.fixture
def alloc(vm) -> BumpAllocator:
    """Allocator over ``vm``'s memory."""
    return BumpAllocator(vm.mem)
