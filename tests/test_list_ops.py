"""Tests for list ranking and the vector list operations."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.lists import ConsArena
from repro.lists.ops import (
    vector_list_lengths,
    vector_list_to_arrays,
    vector_reverse_lists,
)
from repro.lists.ranking import RankingScratch, chase_to_tail, list_ranks
from repro.machine import CostModel, Memory, VectorMachine
from repro.mem import NIL, BumpAllocator


def build(capacity=128, seed=0):
    vm = VectorMachine(
        Memory(16 * capacity + 256, cost_model=CostModel.free(), seed=seed)
    )
    alloc = BumpAllocator(vm.mem)
    arena = ConsArena(alloc, capacity)
    scratch = RankingScratch(alloc, arena.cells)
    return vm, arena, scratch, alloc


class TestListRanks:
    def test_empty_arena(self):
        vm, arena, scratch, _ = build()
        nodes, ranks = list_ranks(vm, scratch, "cdr")
        assert nodes.size == 0

    def test_single_chain(self):
        vm, arena, scratch, _ = build()
        arena.from_values([1, 2, 3, 4])
        nodes, ranks = list_ranks(vm, scratch, "cdr")
        # cells were allocated tail-first by from_values
        assert sorted(ranks.tolist()) == [0, 1, 2, 3]

    def test_multiple_chains(self):
        vm, arena, scratch, _ = build()
        arena.from_values([1, 2])
        arena.from_values([3, 4, 5])
        _, ranks = list_ranks(vm, scratch, "cdr")
        assert sorted(ranks.tolist()) == [0, 0, 1, 1, 2]

    def test_shared_tail_ranks(self):
        vm, arena, scratch, _ = build()
        s = arena.from_values([9, 9])          # ranks 1, 0
        arena.from_values([1], tail=s)         # rank 2
        arena.from_values([2, 3], tail=s)      # ranks 3, 2
        _, ranks = list_ranks(vm, scratch, "cdr")
        assert sorted(ranks.tolist()) == [0, 1, 2, 2, 3]

    def test_cycle_detected(self):
        vm, arena, scratch, _ = build()
        h = arena.from_values([1, 2])
        cells = arena.cell_addresses(h)
        arena.cells.poke_field(cells[-1], "cdr", h)
        with pytest.raises(ReproError):
            list_ranks(vm, scratch, "cdr")


class TestChaseToTail:
    def test_finds_tails(self):
        vm, arena, scratch, _ = build()
        h = arena.from_values([1, 2, 3])
        tail = arena.cell_addresses(h)[-1]
        out = chase_to_tail(vm, arena.cells, "cdr", np.array([h, NIL]), 8)
        assert out[0] == tail
        assert out[1] == NIL


class TestLengths:
    def test_mixed_lengths(self):
        vm, arena, scratch, _ = build()
        h1 = arena.from_values([1])
        h2 = arena.from_values([1, 2, 3, 4, 5])
        out = vector_list_lengths(vm, arena, scratch, [h1, NIL, h2])
        assert out.tolist() == [1, 0, 5]

    def test_shared_suffix_lengths(self):
        vm, arena, scratch, _ = build()
        s = arena.from_values([7, 8])
        h1 = arena.from_values([1], tail=s)
        h2 = arena.from_values([2, 3, 4], tail=s)
        out = vector_list_lengths(vm, arena, scratch, [h1, h2, s])
        assert out.tolist() == [3, 5, 2]

    def test_empty_heads(self):
        vm, arena, scratch, _ = build()
        assert vector_list_lengths(vm, arena, scratch, []).size == 0


class TestToArrays:
    def test_serialises_in_order(self):
        vm, arena, scratch, alloc = build()
        h = arena.from_values([10, 20, 30, 40])
        out_base = alloc.alloc(16, "out")
        n = vector_list_to_arrays(vm, arena, scratch, h, out_base)
        assert n == 4
        assert vm.mem.peek_range(out_base, 4).tolist() == [
            -(10 + 1), -(20 + 1), -(30 + 1), -(40 + 1)
        ]  # car words are sign-tagged atoms

    def test_nil_head(self):
        vm, arena, scratch, alloc = build()
        out_base = alloc.alloc(4, "out")
        assert vector_list_to_arrays(vm, arena, scratch, NIL, out_base) == 0

    def test_ambiguous_arena_rejected(self):
        """A second chain with overlapping rank range collides."""
        vm, arena, scratch, alloc = build()
        h = arena.from_values([1, 2, 3])
        arena.from_values([9, 9, 9])  # same ranks -> same positions
        out_base = alloc.alloc(8, "out")
        with pytest.raises(ReproError):
            vector_list_to_arrays(vm, arena, scratch, h, out_base)


class TestReverse:
    def test_single_list(self):
        vm, arena, scratch, _ = build()
        h = arena.from_values([1, 2, 3, 4])
        (new_h,) = vector_reverse_lists(vm, arena, scratch, [h])
        assert arena.to_values(new_h) == [4, 3, 2, 1]

    def test_many_lists_at_once(self):
        vm, arena, scratch, _ = build()
        h1 = arena.from_values([1, 2])
        h2 = arena.from_values([3, 4, 5])
        h3 = arena.from_values([6])
        new = vector_reverse_lists(vm, arena, scratch, [h1, h2, h3])
        assert arena.to_values(new[0]) == [2, 1]
        assert arena.to_values(new[1]) == [5, 4, 3]
        assert arena.to_values(new[2]) == [6]

    def test_nil_head_passthrough(self):
        vm, arena, scratch, _ = build()
        assert vector_reverse_lists(vm, arena, scratch, [NIL]) == [NIL]

    def test_shared_cells_rejected(self):
        vm, arena, scratch, _ = build()
        s = arena.from_values([9])
        h1 = arena.from_values([1], tail=s)
        h2 = arena.from_values([2], tail=s)
        with pytest.raises(ReproError):
            vector_reverse_lists(vm, arena, scratch, [h1, h2])

    def test_double_reverse_is_identity(self):
        vm, arena, scratch, _ = build()
        h = arena.from_values([5, 6, 7])
        (r,) = vector_reverse_lists(vm, arena, scratch, [h])
        (rr,) = vector_reverse_lists(vm, arena, scratch, [r])
        assert rr == h
        assert arena.to_values(rr) == [5, 6, 7]
