"""Tests for vectorized BST rebalancing (§6 future work)."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import CONFLICT_POLICIES, CostModel, Memory, ScalarProcessor, VectorMachine
from repro.mem import BumpAllocator
from repro.trees import BinarySearchTree
from repro.trees.rebalance import (
    RebalanceWorkspace,
    minimal_height,
    scalar_rebalance,
    vector_rebalance,
)


def build(keys, capacity=512, seed=0):
    vm = VectorMachine(
        Memory(16 * capacity + 64, cost_model=CostModel.free(), seed=seed)
    )
    alloc = BumpAllocator(vm.mem)
    tree = BinarySearchTree(alloc, capacity)
    tree.build(keys)
    ws = RebalanceWorkspace(alloc, tree)
    return vm, tree, ws


class TestVectorRebalance:
    def test_empty_tree(self):
        vm, tree, ws = build([])
        assert vector_rebalance(vm, ws) == (0, 0)

    def test_single_node(self):
        vm, tree, ws = build([5])
        vector_rebalance(vm, ws)
        assert tree.inorder() == [5]
        assert tree.depth() == 1

    def test_degenerate_ascending_chain(self):
        """The worst input: a pure right vine (already a vine, zero
        rotations) still gets balanced."""
        keys = list(range(31))
        vm, tree, ws = build(keys)
        assert tree.depth() == 31
        rotations, waves = vector_rebalance(vm, ws)
        assert rotations == 0  # ascending build = right vine already
        assert tree.inorder() == keys
        assert tree.depth() == minimal_height(31)  # 5

    def test_degenerate_descending_chain(self):
        """A pure left vine needs n-1 right rotations."""
        keys = list(range(31, 0, -1))
        vm, tree, ws = build(keys)
        rotations, _ = vector_rebalance(vm, ws)
        # rotating *every* site per wave does extra work compared to the
        # spine-walking DSW (which needs exactly n-1 = 30): later
        # rotations re-create left edges that must be rotated again.
        # 30 is still the lower bound.
        assert rotations >= 30
        assert tree.inorder() == sorted(keys)
        assert tree.depth() == minimal_height(31)

    def test_random_tree_height_minimal(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 10**6, size=100).tolist()
        vm, tree, ws = build(keys)
        vector_rebalance(vm, ws)
        tree.check_bst_invariant()
        assert Counter(tree.inorder()) == Counter(keys)
        assert tree.depth() == minimal_height(100)  # 7

    def test_duplicate_keys(self):
        keys = [5, 5, 5, 3, 3, 9]
        vm, tree, ws = build(keys)
        vector_rebalance(vm, ws)
        tree.check_bst_invariant()
        assert Counter(tree.inorder()) == Counter(keys)

    @pytest.mark.parametrize("policy", CONFLICT_POLICIES)
    def test_policies(self, policy):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 1000, size=60).tolist()
        vm, tree, ws = build(keys, seed=7)
        vector_rebalance(vm, ws, policy=policy)
        tree.check_bst_invariant()
        assert tree.depth() == minimal_height(60)

    def test_rebalance_twice_is_stable(self):
        keys = list(range(20, 0, -1))
        vm, tree, ws = build(keys)
        vector_rebalance(vm, ws)
        d1 = tree.depth()
        vector_rebalance(vm, ws)
        assert tree.depth() == d1
        assert tree.inorder() == sorted(keys)


class TestScalarRebalance:
    def test_matches_vector_height(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 10**6, size=75).tolist()
        vm, tree, ws = build(keys)
        vector_rebalance(vm, ws)

        vm2 = VectorMachine(Memory(8192, cost_model=CostModel.free(), seed=0))
        tree2 = BinarySearchTree(BumpAllocator(vm2.mem), 512)
        tree2.build(keys)
        scalar_rebalance(ScalarProcessor(vm2.mem), tree2)
        tree2.check_bst_invariant()
        assert tree2.depth() == tree.depth()
        assert tree2.inorder() == tree.inorder()

    def test_empty(self):
        vm = VectorMachine(Memory(1024, cost_model=CostModel.free()))
        tree = BinarySearchTree(BumpAllocator(vm.mem), 8)
        scalar_rebalance(ScalarProcessor(vm.mem), tree)
        assert tree.inorder() == []


class TestMinimalHeight:
    @pytest.mark.parametrize("n,h", [(1, 1), (2, 2), (3, 2), (4, 3),
                                     (7, 3), (8, 4), (100, 7)])
    def test_values(self, n, h):
        assert minimal_height(n) == h


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(st.integers(0, 500), min_size=1, max_size=80),
    seed=st.integers(0, 5),
)
def test_rebalance_property(keys, seed):
    """Any build order, any duplicates: rebalancing preserves the key
    multiset, keeps the BST invariant, and reaches minimal height."""
    vm, tree, ws = build(keys, seed=seed)
    vector_rebalance(vm, ws)
    tree.check_bst_invariant()
    assert Counter(tree.inorder()) == Counter(keys)
    assert tree.depth() == minimal_height(len(keys))
