"""Unit and property tests for simulated memory — especially the
ELS-condition scatter, which everything in FOL rests on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryFault, VectorLengthError
from repro.machine import CONFLICT_POLICIES, CostModel, Memory


@pytest.fixture
def mem() -> Memory:
    return Memory(256, cost_model=CostModel.free(), seed=7)


class TestScalarPort:
    def test_store_load_roundtrip(self, mem):
        mem.sstore(10, 42)
        assert mem.sload(10) == 42

    def test_bounds(self, mem):
        with pytest.raises(MemoryFault):
            mem.sload(256)
        with pytest.raises(MemoryFault):
            mem.sstore(-1, 0)

    def test_charges_scalar_mem(self):
        m = Memory(16, cost_model=CostModel.s810())
        m.sload(0)
        assert m.counter.scalar_cycles == CostModel.s810().scalar_mem


class TestVectorPort:
    def test_vstore_vload_roundtrip(self, mem):
        data = np.arange(10, dtype=np.int64)
        mem.vstore(5, data)
        assert np.array_equal(mem.vload(5, 10), data)

    def test_vload_returns_copy(self, mem):
        mem.vstore(0, np.ones(4, dtype=np.int64))
        v = mem.vload(0, 4)
        v[0] = 99
        assert mem.peek(0) == 1

    def test_fill(self, mem):
        mem.fill(3, 5, 8)
        assert np.array_equal(mem.peek_range(3, 5), np.full(5, 8))

    def test_range_bounds(self, mem):
        with pytest.raises(MemoryFault):
            mem.vload(250, 10)
        with pytest.raises(VectorLengthError):
            mem.vload(0, -1)

    def test_gather(self, mem):
        mem.vstore(0, np.arange(20, dtype=np.int64))
        idx = np.array([3, 3, 19, 0], dtype=np.int64)
        assert np.array_equal(mem.gather(idx), np.array([3, 3, 19, 0]))

    def test_gather_bounds(self, mem):
        with pytest.raises(MemoryFault):
            mem.gather(np.array([0, 300], dtype=np.int64))
        with pytest.raises(MemoryFault):
            mem.gather(np.array([-1], dtype=np.int64))

    def test_gather_rejects_2d(self, mem):
        with pytest.raises(VectorLengthError):
            mem.gather(np.zeros((2, 2), dtype=np.int64))


class TestScatter:
    def test_simple_scatter(self, mem):
        mem.scatter(np.array([1, 5, 9]), np.array([10, 50, 90]))
        assert mem.peek(1) == 10
        assert mem.peek(5) == 50
        assert mem.peek(9) == 90

    def test_length_mismatch(self, mem):
        with pytest.raises(VectorLengthError):
            mem.scatter(np.array([1, 2]), np.array([1]))

    def test_unknown_policy(self, mem):
        with pytest.raises(ValueError):
            mem.scatter(np.array([1]), np.array([1]), policy="nope")

    def test_last_policy_program_order(self, mem):
        mem.scatter(np.array([4, 4, 4]), np.array([1, 2, 3]), policy="last")
        assert mem.peek(4) == 3

    def test_first_policy(self, mem):
        mem.scatter(np.array([4, 4, 4]), np.array([1, 2, 3]), policy="first")
        assert mem.peek(4) == 1

    def test_arbitrary_policy_deterministic_per_seed(self):
        results = set()
        for _ in range(3):
            m = Memory(16, cost_model=CostModel.free(), seed=99)
            m.scatter(np.array([4] * 8), np.arange(8, dtype=np.int64))
            results.add(m.peek(4))
        assert len(results) == 1  # same seed, same winner

    def test_arbitrary_policy_varies_across_seeds(self):
        winners = set()
        for seed in range(20):
            m = Memory(16, cost_model=CostModel.free(), seed=seed)
            m.scatter(np.array([4] * 8), np.arange(8, dtype=np.int64))
            winners.add(m.peek(4))
        assert len(winners) > 1  # genuinely arbitrary across seeds

    @settings(max_examples=40, deadline=None)
    @given(
        addrs=st.lists(st.integers(0, 31), min_size=1, max_size=64),
        seed=st.integers(0, 10),
        policy=st.sampled_from(CONFLICT_POLICIES),
    )
    def test_els_condition_property(self, addrs, seed, policy):
        """The ELS condition: after a scatter, every written word holds
        exactly one of the values some lane wrote to it — never an
        amalgam, never a value from another address."""
        m = Memory(64, cost_model=CostModel.free(), seed=seed)
        addrs = np.asarray(addrs, dtype=np.int64)
        values = np.arange(100, 100 + addrs.size, dtype=np.int64)
        m.scatter(addrs, values, policy=policy)
        for a in np.unique(addrs):
            lane_values = values[addrs == a]
            assert m.peek(int(a)) in lane_values

    def test_masked_scatter_suppresses_lanes(self, mem):
        mem.scatter_masked(
            np.array([1, 2, 3]),
            np.array([10, 20, 30]),
            np.array([True, False, True]),
        )
        assert mem.peek(1) == 10
        assert mem.peek(2) == 0
        assert mem.peek(3) == 30

    def test_masked_scatter_length_mismatch(self, mem):
        with pytest.raises(VectorLengthError):
            mem.scatter_masked(
                np.array([1, 2]), np.array([1, 2]), np.array([True])
            )


class TestCharging:
    def test_gather_charged_per_element(self):
        cm = CostModel(vector_startup=10.0, chime_gather=2.0)
        m = Memory(64, cost_model=cm)
        m.gather(np.arange(8, dtype=np.int64))
        assert m.counter.vector_cycles == 10.0 + 2.0 * 8

    def test_masked_scatter_charged_full_width(self):
        """Masked-off lanes still flow through the pipe."""
        cm = CostModel(vector_startup=0.0, chime_gather=1.0)
        m = Memory(64, cost_model=cm)
        m.scatter_masked(
            np.arange(8, dtype=np.int64),
            np.arange(8, dtype=np.int64),
            np.zeros(8, dtype=bool),
        )
        assert m.counter.vector_cycles == 8.0

    def test_debug_access_never_charged(self):
        m = Memory(64, cost_model=CostModel.s810())
        m.poke(5, 1)
        m.peek(5)
        m.peek_range(0, 8)
        assert m.counter.total == 0.0


class TestConstruction:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Memory(0)
