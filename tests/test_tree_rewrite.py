"""Tests for parallel operation-tree rewriting (§2, §3.3, Figure 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PhantomNodeError, RewriteError
from repro.machine import CONFLICT_POLICIES, CostModel, Memory, ScalarProcessor, VectorMachine
from repro.mem import BumpAllocator
from repro.trees import (
    OpTreeArena,
    find_redexes,
    fol_star_rewrite_all,
    forced_rewrite_all,
    sequential_rewrite_all,
)


def build(capacity=512, seed=0):
    vm = VectorMachine(
        Memory(8 * capacity + 64, cost_model=CostModel.free(), seed=seed)
    )
    arena = OpTreeArena(BumpAllocator(vm.mem), capacity)
    return vm, arena


class TestConstruction:
    def test_leaf_and_mul(self):
        _, a = build()
        l1, l2 = a.leaf(5), a.leaf(7)
        m = a.mul(l1, l2)
        assert a.leaves_inorder(m) == [5, 7]

    def test_right_comb(self):
        _, a = build()
        root = a.right_comb([1, 2, 3, 4])
        assert a.leaves_inorder(root) == [1, 2, 3, 4]
        assert not a.is_left_linear(root)

    def test_single_leaf_comb(self):
        _, a = build()
        root = a.right_comb([9])
        assert a.leaves_inorder(root) == [9]
        assert a.is_left_linear(root)

    def test_empty_comb_rejected(self):
        _, a = build()
        with pytest.raises(RewriteError):
            a.right_comb([])

    def test_random_tree_preserves_leaf_order(self, rng):
        _, a = build()
        vals = list(range(20))
        root = a.random_tree(vals, rng)
        assert a.leaves_inorder(root) == vals


class TestValidators:
    def test_check_tree_detects_sharing(self):
        _, a = build()
        leaf = a.leaf(1)
        root = a.mul(leaf, leaf)  # DAG, not a tree
        with pytest.raises(PhantomNodeError):
            a.check_tree(root)

    def test_check_tree_detects_cycle(self):
        _, a = build()
        l1, l2 = a.leaf(1), a.leaf(2)
        m = a.mul(l1, l2)
        a.nodes.poke_field(m, "right", m)  # self-cycle
        with pytest.raises(PhantomNodeError):
            a.check_tree(m)

    def test_leaves_detects_invalid_pointer(self):
        _, a = build()
        m = a.mul(a.leaf(1), a.leaf(2))
        a.nodes.poke_field(m, "left", 999_999 % a.memory.size)
        with pytest.raises(PhantomNodeError):
            a.leaves_inorder(m)


class TestFindRedexes:
    def test_comb_redex_count(self):
        """A right comb over k leaves has k-2 redexes (every interior
        node whose right child is interior)."""
        vm, a = build()
        a.right_comb([1, 2, 3, 4, 5])
        heads, rights = find_redexes(vm, a)
        assert heads.size == 3

    def test_left_linear_has_none(self):
        vm, a = build()
        root = a.mul(a.mul(a.leaf(1), a.leaf(2)), a.leaf(3))
        heads, _ = find_redexes(vm, a)
        assert heads.size == 0
        assert a.is_left_linear(root)


class TestSequentialRewrite:
    def test_small_comb(self):
        vm, a = build()
        sp = ScalarProcessor(vm.mem)
        root = a.right_comb([1, 2, 3])
        n = sequential_rewrite_all(sp, a, root)
        assert n == 1
        assert a.leaves_inorder(root) == [1, 2, 3]
        assert a.is_left_linear(root)

    def test_comb_rewrite_count(self):
        """Root-first sequential rewriting left-linearises a k-leaf comb
        in exactly k-2 rewrites."""
        vm, a = build()
        sp = ScalarProcessor(vm.mem)
        root = a.right_comb(list(range(12)))
        assert sequential_rewrite_all(sp, a, root) == 10


class TestFolStarRewrite:
    @pytest.mark.parametrize("policy", CONFLICT_POLICIES)
    def test_comb_safe_under_all_policies(self, policy):
        vm, a = build(seed=3)
        vals = list(range(1, 25))
        root = a.right_comb(vals)
        fol_star_rewrite_all(vm, a, root, policy=policy)
        a.check_tree(root)
        assert a.leaves_inorder(root) == vals
        assert a.is_left_linear(root)

    def test_already_linear_zero_waves(self):
        vm, a = build()
        root = a.mul(a.mul(a.leaf(1), a.leaf(2)), a.leaf(3))
        rewrites, waves = fol_star_rewrite_all(vm, a, root)
        assert rewrites == 0
        assert waves == 0

    def test_figure5_example(self):
        """a*(b*(c*d)) must become the left-linear ((a*b)*c)*d shape
        with the same leaf order."""
        vm, a = build()
        root = a.right_comb([10, 20, 30, 40])
        fol_star_rewrite_all(vm, a, root)
        assert a.leaves_inorder(root) == [10, 20, 30, 40]
        assert a.is_left_linear(root)
        # left-linear: the right child of every * is a leaf
        a.check_tree(root)


class TestForcedRewrite:
    def test_forced_corrupts_overlapping_redexes(self):
        """§2's claim: forced parallel rewriting of a shared node breaks
        the tree for at least some lane-winning orders.  We scan seeds
        until corruption appears (one seed is enough to prove unsafety;
        the loop makes the test robust to lucky orders)."""
        vals = list(range(1, 10))
        corrupted = 0
        for seed in range(12):
            vm, a = build(seed=seed)
            root = a.right_comb(vals)
            forced_rewrite_all(vm, a, root, policy="arbitrary")
            try:
                a.check_tree(root)
                if a.leaves_inorder(root) != vals:
                    corrupted += 1
            except PhantomNodeError:
                corrupted += 1
        assert corrupted > 0

    def test_forced_safe_when_no_overlap(self):
        """Disjoint redexes are fine even without FOL — the §2 problem
        is *sharing*, not parallelism.  Two separate 3-leaf combs have
        one redex each and share no node."""
        vm, a = build()
        r1 = a.right_comb([1, 2, 3])
        r2 = a.right_comb([4, 5, 6])
        forced_rewrite_all(vm, a, r1)
        for root, vals in ((r1, [1, 2, 3]), (r2, [4, 5, 6])):
            a.check_tree(root)
            assert a.leaves_inorder(root) == vals
            assert a.is_left_linear(root)


@settings(max_examples=30, deadline=None)
@given(
    vals=st.lists(st.integers(0, 99), min_size=1, max_size=24),
    seed=st.integers(0, 5),
    shape_seed=st.integers(0, 5),
)
def test_fol_star_rewrite_property(vals, seed, shape_seed):
    """Any tree shape, any seed: FOL* rewriting preserves the leaf
    sequence, keeps the structure a proper tree, and reaches the
    left-linear normal form."""
    vm, a = build(seed=seed)
    rng = np.random.default_rng(shape_seed)
    root = a.random_tree(vals, rng)
    fol_star_rewrite_all(vm, a, root)
    a.check_tree(root)
    assert a.leaves_inorder(root) == list(vals)
    assert a.is_left_linear(root)
