"""Rebalancer cooldown and oscillation-guard behaviour.

The planner's two safety valves — the cooldown between plans and the
dominant-bin skip — are what keep live migration from thrashing.
These tests pin their exact semantics: the cooldown decrements once per
planning opportunity (one ``plan()`` call per micro-batch) and blocks
exactly ``cooldown`` opportunities after a plan; a single bin hotter
than half the hot-cold gap is never moved, no matter how many times the
planner looks at it; and ``cooldown=0`` legitimately plans on every
batch the load justifies.
"""

import numpy as np
import pytest

from repro.shard.partition import make_partition_map
from repro.shard.rebalance import Rebalancer

#: Decay small enough that recorded traffic survives the plan() calls a
#: test makes, so load comparisons stay exact.
NO_DECAY = 1e-9


def two_shard_map():
    """Range partition: shard 0 owns hash slots 0-3, shard 1 owns 4-7."""
    return make_partition_map(
        "range", 2, table_size=8, n_cells=4, key_space=8
    )


def heat(part, indices, weight=10.0):
    """Record ``weight`` traffic on the given hash-domain indices."""
    for idx in indices:
        part.hash.record(idx, weight)


class TestCooldown:
    def test_cooldown_decrements_once_per_opportunity(self):
        part = two_shard_map()
        heat(part, [0, 1, 2, 3])
        r = Rebalancer(part, threshold=1.5, cooldown=3, decay=NO_DECAY)
        assert r.plan()  # hot: plans and arms the cooldown
        assert r.plans == 1
        # Keep the source shard hot so only the cooldown can be the
        # reason nothing is planned.
        for step in (2, 1, 0):
            heat(part, part.hash.indices_of(0))
            assert r.plan() == []
            assert r._cool == step  # exactly one decrement per call
        # Cooldown expired: the very next opportunity plans again.
        heat(part, part.hash.indices_of(0))
        assert r.plan()
        assert r.plans == 2

    def test_failed_plan_does_not_arm_cooldown(self):
        # A hot shard whose load cannot be moved (dominant index) must
        # not burn the cooldown: nothing happened that needs observing.
        part = two_shard_map()
        part.hash.record(0, 100.0)
        r = Rebalancer(part, threshold=1.5, cooldown=4, decay=NO_DECAY)
        assert r.plan() == []
        assert r._cool == 0
        assert r.plans == 0

    def test_cooldown_zero_plans_every_batch(self):
        part = two_shard_map()
        r = Rebalancer(part, threshold=1.2, cooldown=0, decay=NO_DECAY)
        for expected_plans in (1, 2, 3):
            # Re-heat whatever shard 0 currently owns before each batch.
            heat(part, part.hash.indices_of(0), weight=50.0)
            heat(part, part.hash.indices_of(1), weight=1.0)
            assert r.plan()
            assert r.plans == expected_plans


class TestOscillationGuard:
    def test_dominant_index_never_moves(self):
        # One index carries (far) more than half the hot-cold gap:
        # moving it would just relocate the hotspot, so the planner must
        # leave it alone — on every opportunity, not just the first.
        part = two_shard_map()
        r = Rebalancer(part, threshold=1.2, cooldown=0, decay=NO_DECAY)
        for _ in range(5):
            part.hash.record(0, 100.0)
            assert r.plan() == []
            assert part.hash.owner_of(0) == 0
        assert part.total_moves() == 0

    def test_dominant_index_skipped_but_tail_moves(self):
        # Dominant index plus a movable tail: the plan takes tail
        # indices and skips the dominant one.
        part = two_shard_map()
        part.hash.record(0, 100.0)
        heat(part, [1, 2, 3], weight=8.0)
        r = Rebalancer(part, threshold=1.2, cooldown=0, decay=NO_DECAY)
        moves = r.plan()
        assert moves
        assert all(m.bin != 0 for m in moves)
        assert part.hash.owner_of(0) == 0

    def test_no_ping_pong_between_two_shards(self):
        # After a successful migration the moved bins must not bounce
        # straight back: each bin's owner changes at most once over a
        # sequence of planning opportunities with stable traffic.
        part = two_shard_map()
        heat(part, [0, 1, 2, 3])
        r = Rebalancer(part, threshold=1.2, cooldown=0, decay=1.0)
        first = r.plan()
        assert first
        owners_after = {m.bin: part.hash.bin_owner_of(m.bin) for m in first}
        # decay=1.0 wipes the old signal; replay the same per-index
        # traffic against the *new* owners, as a stable workload would.
        for _ in range(4):
            heat(part, [0, 1, 2, 3])
            r.plan()
        for b, owner in owners_after.items():
            assert part.hash.bin_owner_of(b) == owner
