"""Tests for vectorized set operations over the hashing substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.sets import VectorHashSet, vector_member, vector_unique
from repro.hashing.table import OpenHashTable
from repro.machine import CONFLICT_POLICIES, CostModel, Memory, VectorMachine
from repro.mem import BumpAllocator


def build(size=67, seed=0):
    vm = VectorMachine(Memory(size + 64, cost_model=CostModel.free(), seed=seed))
    table = OpenHashTable(BumpAllocator(vm.mem), size)
    return vm, table


class TestVectorUnique:
    def test_empty(self):
        vm, t = build()
        assert vector_unique(vm, t, np.array([], dtype=np.int64)).size == 0

    def test_no_duplicates_passthrough(self):
        vm, t = build()
        keys = np.array([5, 9, 200])
        out = vector_unique(vm, t, keys)
        assert np.array_equal(out, keys)

    def test_duplicates_removed_first_occurrence_order(self):
        vm, t = build()
        keys = np.array([9, 5, 9, 7, 5, 9])
        out = vector_unique(vm, t, keys, policy="first")
        assert np.array_equal(out, [9, 5, 7])

    def test_all_identical(self):
        vm, t = build()
        out = vector_unique(vm, t, np.full(30, 4, dtype=np.int64))
        assert np.array_equal(out, [4])

    def test_colliding_distinct_keys_kept(self):
        vm, t = build(size=67)
        keys = np.array([5, 72, 139, 72, 5])  # all ≡ 5 (mod 67)
        out = vector_unique(vm, t, keys)
        assert np.array_equal(out, [5, 72, 139])

    def test_incremental_batches(self):
        vm, t = build()
        out1 = vector_unique(vm, t, np.array([1, 2, 3]))
        out2 = vector_unique(vm, t, np.array([2, 3, 4]))
        assert np.array_equal(out1, [1, 2, 3])
        assert np.array_equal(out2, [4])

    def test_negative_rejected(self):
        vm, t = build()
        with pytest.raises(ValueError):
            vector_unique(vm, t, np.array([-3]))

    @pytest.mark.parametrize("policy", CONFLICT_POLICIES)
    def test_policies_set_semantics(self, policy):
        vm, t = build(seed=6)
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 100, size=60)
        out = vector_unique(vm, t, keys, policy=policy)
        assert sorted(out.tolist()) == sorted(set(keys.tolist()))

    def test_first_policy_gives_first_occurrence_order(self):
        vm, t = build(seed=6)
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 100, size=60)
        out = vector_unique(vm, t, keys, policy="first")
        _, first_idx = np.unique(keys, return_index=True)
        expected = keys[np.sort(first_idx)]
        assert np.array_equal(out, expected)


class TestVectorMember:
    def test_empty_query(self):
        vm, t = build()
        assert vector_member(vm, t, np.array([], dtype=np.int64)).size == 0

    def test_hits_and_misses(self):
        vm, t = build()
        vector_unique(vm, t, np.array([5, 72, 200]))
        mask = vector_member(vm, t, np.array([5, 6, 72, 201, 200]))
        assert mask.tolist() == [True, False, True, False, True]

    def test_miss_on_colliding_probe_chain(self):
        vm, t = build(size=67)
        vector_unique(vm, t, np.array([5, 72, 139]))  # a collision chain
        mask = vector_member(vm, t, np.array([206]))  # also ≡ 5, absent
        assert not mask[0]

    def test_duplicate_queries(self):
        vm, t = build()
        vector_unique(vm, t, np.array([9]))
        mask = vector_member(vm, t, np.array([9, 9, 9]))
        assert mask.all()


class TestVectorHashSet:
    def test_add_and_contains(self):
        vm, _ = build()
        s = VectorHashSet(vm, BumpAllocator(vm.mem), 67, name="s2")
        added = s.add_all(np.array([3, 3, 8]))
        assert np.array_equal(added, [3, 8])
        assert len(s) == 2
        assert s.contains_all(np.array([3, 8, 9])).tolist() == [True, True, False]

    def test_keys_snapshot(self):
        vm, _ = build()
        s = VectorHashSet(vm, BumpAllocator(vm.mem), 67, name="s3")
        s.add_all(np.array([1, 2]))
        assert sorted(s.keys().tolist()) == [1, 2]


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(0, 300), min_size=0, max_size=60),
    queries=st.lists(st.integers(0, 300), min_size=0, max_size=40),
    seed=st.integers(0, 5),
)
def test_set_semantics_property(keys, queries, seed):
    """unique + member must agree with Python's set."""
    keys = np.asarray(keys, dtype=np.int64)
    queries = np.asarray(queries, dtype=np.int64)
    vm, t = build(size=127, seed=seed)
    uniq = vector_unique(vm, t, keys)
    assert sorted(uniq.tolist()) == sorted(set(keys.tolist()))
    mask = vector_member(vm, t, queries)
    pyset = set(keys.tolist())
    assert mask.tolist() == [q in pyset for q in queries.tolist()]
