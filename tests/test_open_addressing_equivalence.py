"""Property-based equivalence for vectorized open-addressing insertion
under duplicate-heavy key streams (ISSUE 2 satellite).

:func:`repro.hashing.sets.vector_unique` runs proper FOL1 rounds with
subscript labels (equal keys racing on one free slot must elect one
winner), so its observable behaviour has a trivial scalar reference:
insert-if-absent, one key at a time.  The properties:

* the table ends up storing exactly the distinct keys — same multiset
  of slots a scalar insert-if-absent loop produces;
* the returned "fresh" vector is the distinct keys, and under the
  deterministic ``"first"`` conflict policy it is in first-occurrence
  order, exactly matching the scalar reference's insertion order;
* the same holds when the key space is sharded across K per-shard
  tables by a :class:`~repro.shard.partition.RoutingTable` residue
  split — the merged stored-key union is the distinct-key set and the
  per-shard contents are disjoint (owner-computes over key residues).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.scalar import scalar_open_insert
from repro.hashing.sets import vector_unique
from repro.hashing.table import OpenHashTable
from repro.machine import CONFLICT_POLICIES, CostModel, Memory, ScalarProcessor, VectorMachine
from repro.mem import BumpAllocator
from repro.shard import RoutingTable, hash_partition

TABLE_SIZE = 67  # OpenHashTable requires size > 32

# Duplicate-heavy by construction: many draws from a small key universe.
duplicate_heavy_keys = st.lists(
    st.integers(min_value=0, max_value=24), min_size=0, max_size=60
)


def build_table(size=TABLE_SIZE, seed=0):
    vm = VectorMachine(Memory(size + 64, cost_model=CostModel.free(), seed=seed))
    return vm, OpenHashTable(BumpAllocator(vm.mem), size)


def scalar_reference(keys):
    """Insert-if-absent, one key at a time; returns (table, order)."""
    mem = Memory(TABLE_SIZE + 64, cost_model=CostModel.free())
    table = OpenHashTable(BumpAllocator(mem), TABLE_SIZE)
    order = list(dict.fromkeys(int(k) for k in keys))
    scalar_open_insert(ScalarProcessor(mem), table, order)
    return table, order


@settings(max_examples=60, deadline=None)
@given(keys=duplicate_heavy_keys, policy=st.sampled_from(CONFLICT_POLICIES))
def test_vector_unique_matches_scalar_reference(keys, policy):
    keys = np.asarray(keys, dtype=np.int64)
    vm, table = build_table()
    fresh = vector_unique(vm, table, keys, policy=policy)

    ref_table, ref_order = scalar_reference(keys)
    # Same distinct-key contents...
    assert sorted(fresh.tolist()) == sorted(ref_order)
    assert sorted(table.stored_keys().tolist()) == sorted(ref_order)
    # ...and under the deterministic first-occurrence policy the races
    # resolve exactly as the scalar loop's insertion order does, so the
    # layouts agree slot for slot (other policies may elect a different
    # winner among colliding keys and permute the probe tails).
    if policy == "first":
        assert np.array_equal(
            vm.mem.words[table.base:table.base + TABLE_SIZE],
            ref_table.memory.words[ref_table.base:ref_table.base + TABLE_SIZE],
        )


@settings(max_examples=40, deadline=None)
@given(keys=duplicate_heavy_keys)
def test_first_policy_reproduces_scalar_insertion_order(keys):
    keys = np.asarray(keys, dtype=np.int64)
    vm, table = build_table()
    fresh = vector_unique(vm, table, keys, policy="first")
    _, ref_order = scalar_reference(keys)
    assert fresh.tolist() == ref_order


@settings(max_examples=40, deadline=None)
@given(keys=duplicate_heavy_keys)
def test_incremental_batches_insert_each_key_once(keys):
    """Splitting the stream into micro-batches must not re-admit keys:
    a key is fresh in exactly the first batch that contains it."""
    keys = np.asarray(keys, dtype=np.int64)
    vm, table = build_table()
    seen = set()
    for start in range(0, keys.size, 7):
        batch = keys[start:start + 7]
        fresh = set(vector_unique(vm, table, batch, policy="first").tolist())
        assert fresh == set(batch.tolist()) - seen
        seen |= fresh
    assert sorted(table.stored_keys().tolist()) == sorted(seen)


@settings(max_examples=40, deadline=None)
@given(
    keys=duplicate_heavy_keys,
    shards=st.sampled_from([1, 2, 3, 5]),
    policy=st.sampled_from(CONFLICT_POLICIES),
)
def test_sharded_insertion_matches_unsharded(keys, shards, policy):
    """Owner-computes over key residues: each shard deduplicates only
    the keys it owns, in its own table, and the merged result matches
    the single-table run — the property the sharded runtime's hash path
    relies on (repro/shard routes chain-head slots the same way)."""
    keys = np.asarray(keys, dtype=np.int64)
    routing = RoutingTable(hash_partition(25, shards), shards)

    per_shard_stored = []
    fresh_union = []
    for shard in range(shards):
        owned = np.asarray(
            [k for k in keys if routing.owner_of(routing.fold(int(k))) == shard],
            dtype=np.int64,
        )
        vm, table = build_table(seed=shard)
        fresh_union.extend(vector_unique(vm, table, owned, policy=policy).tolist())
        per_shard_stored.append(set(table.stored_keys().tolist()))

    distinct = set(keys.tolist())
    # Per-shard contents are disjoint and union to the distinct keys.
    assert sum(len(s) for s in per_shard_stored) == len(distinct)
    assert set().union(*per_shard_stored) == distinct
    assert sorted(fresh_union) == sorted(distinct)
