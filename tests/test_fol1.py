"""Unit tests for FOL1 — the paper's core algorithm (§3.2)."""

import numpy as np
import pytest

from repro.core import fol1, fol1_sets_of_addresses
from repro.core.theorems import check_all
from repro.errors import DeadlockError, LabelError, VectorLengthError


class TestBasics:
    def test_empty_input(self, vm):
        dec = fol1(vm, np.array([], dtype=np.int64))
        assert dec.m == 0

    def test_single_element(self, vm):
        dec = fol1(vm, np.array([7]))
        assert dec.m == 1
        assert np.array_equal(dec.sets[0], [0])

    def test_no_duplicates_one_round(self, vm):
        """Theorem 3: M = 1 without duplicates."""
        dec = fol1(vm, np.array([3, 1, 4, 15, 9, 2, 6]))
        assert dec.m == 1
        dec.validate()

    def test_all_identical_n_rounds(self, vm):
        """Lemma 3: M' identical elements -> M = M' singleton sets."""
        dec = fol1(vm, np.full(6, 13, dtype=np.int64))
        assert dec.m == 6
        assert all(s.size == 1 for s in dec.sets)
        dec.validate()

    def test_paper_figure6_shape(self, vm):
        """Figure 6: {a,b,a,c,c,a,a,b,c} decomposes into sets of sizes
        4+3+2 = (a,b,c),(a,b,c)... with M = multiplicity of 'a' = 4."""
        a, b, c = 10, 20, 30
        v = np.array([a, b, a, c, c, a, a, b, c])
        dec = fol1(vm, v)
        assert dec.m == 4
        assert sum(dec.cardinalities()) == 9
        dec.validate()

    def test_rejects_2d_input(self, vm):
        with pytest.raises(VectorLengthError):
            fol1(vm, np.zeros((2, 2), dtype=np.int64))


class TestLabels:
    def test_custom_labels(self, vm):
        dec = fol1(vm, np.array([5, 5, 9]), labels=np.array([100, 200, 300]))
        dec.validate()

    def test_duplicate_labels_rejected(self, vm):
        with pytest.raises(LabelError):
            fol1(vm, np.array([5, 5]), labels=np.array([1, 1]))

    def test_wrong_label_count_rejected(self, vm):
        with pytest.raises(VectorLengthError):
            fol1(vm, np.array([5, 5]), labels=np.array([1, 2, 3]))


class TestWorkArea:
    def test_shared_work_area_scribbles_targets(self, vm):
        """With work_offset=0 the labels land in the target words —
        allowed because main processing rewrites them (§3.2)."""
        v = np.array([10, 11, 12])
        fol1(vm, v)
        written = {vm.mem.peek(a) for a in (10, 11, 12)}
        assert written == {0, 1, 2}  # the subscript labels

    def test_separate_work_area_preserves_targets(self, vm):
        vm.mem.poke(10, 777)
        fol1(vm, np.array([10, 11]), work_offset=100)
        assert vm.mem.peek(10) == 777
        assert vm.mem.peek(110) in (0, 1)


class TestOnSetCallback:
    def test_callback_sees_every_set_in_order(self, vm):
        v = np.array([5, 9, 5, 9, 5])
        seen = []
        fol1(vm, v, on_set=lambda s, j: seen.append((j, s.copy())))
        assert [j for j, _ in seen] == [0, 1, 2]
        all_positions = np.concatenate([s for _, s in seen])
        assert sorted(all_positions.tolist()) == [0, 1, 2, 3, 4]

    def test_callback_positions_index_original_vector(self, vm):
        v = np.array([5, 9, 5])
        def check(s, j):
            addrs = v[s]
            assert np.unique(addrs).size == addrs.size
        fol1(vm, v, on_set=check)


class TestStopAfter:
    def test_s1_only(self, vm):
        """stop_after=1 returns S1: one occurrence of each distinct
        address (the §5 GC/maze specialisation)."""
        v = np.array([5, 9, 5, 7, 5])
        dec = fol1(vm, v, stop_after=1)
        assert dec.m == 1
        s1_addrs = np.sort(v[dec.sets[0]])
        assert np.array_equal(s1_addrs, [5, 7, 9])

    def test_stop_after_two(self, vm):
        dec = fol1(vm, np.array([5, 5, 5]), stop_after=2)
        assert dec.m == 2


class TestPolicies:
    @pytest.mark.parametrize("policy", ["arbitrary", "last", "first"])
    def test_correct_under_all_policies(self, make_vm, policy):
        vm = make_vm(seed=3)
        rng = np.random.default_rng(0)
        v = rng.integers(1, 30, size=100)
        dec = fol1(vm, v, policy=policy)
        check_all(dec)

    def test_first_policy_matches_reference(self, vm, rng):
        from repro.core import reference_decomposition
        v = rng.integers(1, 20, size=60)
        dec = fol1(vm, v, policy="first")
        ref = reference_decomposition(v)
        assert dec.m == ref.m
        for a, b in zip(dec.sets, ref.sets):
            assert np.array_equal(np.sort(a), np.sort(b))


class TestSafetyValves:
    def test_max_rounds_guard(self, vm):
        with pytest.raises(DeadlockError):
            fol1(vm, np.full(10, 5, dtype=np.int64), max_rounds=3)


class TestAddressSets:
    def test_fol1_sets_of_addresses(self, vm):
        sets = fol1_sets_of_addresses(vm, np.array([5, 9, 5]))
        assert len(sets) == 2
        assert sorted(sets[0].tolist()) == [5, 9]
        assert sets[1].tolist() == [5]


class TestCycleAccounting:
    def test_charges_something_on_s810(self, make_vm):
        vm = make_vm(cost="s810")
        fol1(vm, np.array([5, 9, 5]))
        assert vm.counter.vector_cycles > 0

    def test_linear_regime_cheaper_than_quadratic(self, make_vm):
        """Theorems 4 vs 6, in cycles."""
        n = 200
        vm1 = make_vm(size=2048, cost="s810")
        fol1(vm1, np.arange(1, n + 1, dtype=np.int64))
        linear = vm1.counter.total
        vm2 = make_vm(size=2048, cost="s810")
        fol1(vm2, np.full(n, 1, dtype=np.int64))
        quadratic = vm2.counter.total
        assert quadratic > 10 * linear
