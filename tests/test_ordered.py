"""Tests for order-preserving FOL (footnote 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import Decomposition
from repro.core.ordered import (
    check_program_order,
    fol1_ordered,
    ordered_rmw_add,
    ordered_scatter,
)
from repro.errors import DecompositionError
from repro.machine import CostModel, Memory, VectorMachine


def fresh_vm(seed: int = 0, size: int = 4096) -> VectorMachine:
    return VectorMachine(Memory(size, cost_model=CostModel.free(), seed=seed))


class TestFol1Ordered:
    def test_no_duplicates_single_set(self, vm):
        dec = fol1_ordered(vm, np.array([3, 7, 11]))
        assert dec.m == 1
        check_program_order(dec)

    def test_same_address_positions_in_program_order(self, vm):
        v = np.array([5, 5, 5, 5])
        dec = fol1_ordered(vm, v)
        assert dec.m == 4
        # each singleton set, earliest position first
        assert [int(s[0]) for s in dec.sets] == [0, 1, 2, 3]

    def test_footnote7_relation(self, vm):
        """i < j with same address => set(i) < set(j)."""
        v = np.array([9, 4, 9, 4, 9])
        dec = fol1_ordered(vm, v)
        check_program_order(dec)

    def test_partition_still_holds(self, vm, rng):
        v = rng.integers(1, 20, size=80)
        dec = fol1_ordered(vm, v)
        dec.check_partition()
        dec.check_parallel_processable()
        check_program_order(dec)


class TestCheckProgramOrder:
    def test_detects_violation(self):
        dec = Decomposition(
            index_vector=np.array([5, 5], dtype=np.int64),
            sets=[np.array([1], dtype=np.int64), np.array([0], dtype=np.int64)],
        )
        with pytest.raises(DecompositionError):
            check_program_order(dec)


class TestOrderedScatter:
    def test_last_value_wins_per_address(self, vm):
        addrs = np.array([10, 11, 10, 11, 10])
        values = np.array([1, 2, 3, 4, 5])
        ordered_scatter(vm, addrs, values)
        assert vm.mem.peek(10) == 5  # last program-order write to 10
        assert vm.mem.peek(11) == 4

    def test_equivalent_to_sequential_loop(self, rng):
        for trial in range(5):
            addrs = rng.integers(10, 20, size=30)
            values = rng.integers(0, 1000, size=30)
            vm = fresh_vm(seed=trial)
            ordered_scatter(vm, addrs, values)
            expected = {}
            for a, x in zip(addrs, values):
                expected[int(a)] = int(x)
            for a, x in expected.items():
                assert vm.mem.peek(a) == x


class TestOrderedRmwAdd:
    def test_accumulates_all_deltas(self, vm):
        addrs = np.array([10, 10, 11, 10])
        deltas = np.array([1, 2, 5, 4])
        rounds = ordered_rmw_add(vm, addrs, deltas, work_offset=100)
        assert vm.mem.peek(10) == 7
        assert vm.mem.peek(11) == 5
        assert rounds == 3

    def test_matches_numpy_add_at(self, rng):
        addrs = rng.integers(10, 30, size=100)
        deltas = rng.integers(-5, 6, size=100)
        vm = fresh_vm()
        ordered_rmw_add(vm, addrs, deltas, work_offset=200)
        expected = np.zeros(40, dtype=np.int64)
        np.add.at(expected, addrs, deltas)
        got = vm.mem.peek_range(0, 40)
        assert np.array_equal(got[10:30], expected[10:30])


@settings(max_examples=50, deadline=None)
@given(
    v=st.lists(st.integers(1, 30), min_size=1, max_size=80),
    seed=st.integers(0, 7),
)
def test_program_order_property(v, seed):
    """footnote 7's relation holds on arbitrary inputs."""
    v = np.asarray(v, dtype=np.int64)
    dec = fol1_ordered(fresh_vm(seed, size=256), v)
    dec.check_partition()
    dec.check_parallel_processable()
    check_program_order(dec)


@settings(max_examples=40, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(10, 25), st.integers(0, 99)),
        min_size=1, max_size=60,
    ),
    seed=st.integers(0, 7),
)
def test_ordered_scatter_sequential_semantics(pairs, seed):
    addrs = np.array([p[0] for p in pairs], dtype=np.int64)
    values = np.array([p[1] for p in pairs], dtype=np.int64)
    vm = fresh_vm(seed, size=256)
    ordered_scatter(vm, addrs, values)
    expected = {}
    for a, x in pairs:
        expected[a] = x
    for a, x in expected.items():
        assert vm.mem.peek(a) == x
