"""Property-based tests: FOL1 honours the paper's theorems on arbitrary
inputs under every conflict policy."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fol1, max_multiplicity, reference_decomposition
from repro.core.theorems import (
    check_all,
    check_theorem6_quadratic,
    fol1_element_work,
)
from repro.machine import CONFLICT_POLICIES, CostModel, Memory, VectorMachine


def fresh_vm(seed: int, size: int = 4096) -> VectorMachine:
    return VectorMachine(Memory(size, cost_model=CostModel.free(), seed=seed))


index_vectors = st.lists(
    st.integers(min_value=1, max_value=200), min_size=0, max_size=150
).map(lambda xs: np.asarray(xs, dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(v=index_vectors, seed=st.integers(0, 7), policy=st.sampled_from(CONFLICT_POLICIES))
def test_all_theorems_hold(v, seed, policy):
    """Theorems 1, 2, 3, 5 on arbitrary inputs and policies."""
    dec = fol1(fresh_vm(seed, size=256 + 8), v, policy=policy)
    if v.size:
        check_all(dec)
    else:
        assert dec.m == 0


@settings(max_examples=40, deadline=None)
@given(v=index_vectors, seed=st.integers(0, 7))
def test_m_equals_max_multiplicity(v, seed):
    """Lemma 3 / Theorem 5 in their sharpest form: the number of rounds
    is exactly the maximum address multiplicity."""
    dec = fol1(fresh_vm(seed, size=256 + 8), v)
    assert dec.m == max_multiplicity(v)


@settings(max_examples=40, deadline=None)
@given(v=index_vectors, seed=st.integers(0, 7), policy=st.sampled_from(CONFLICT_POLICIES))
def test_cardinalities_invariant_across_policies(v, seed, policy):
    """Which lane survives is policy-dependent, but |S_j| is not:
    |S_j| = #addresses with multiplicity >= j, independent of winners."""
    dec = fol1(fresh_vm(seed, size=256 + 8), v, policy=policy)
    ref = reference_decomposition(v)
    assert dec.cardinalities() == ref.cardinalities()


@settings(max_examples=30, deadline=None)
@given(
    n_distinct=st.integers(1, 40),
    multiplicity=st.integers(1, 6),
    seed=st.integers(0, 7),
)
def test_uniform_multiplicity_structure(n_distinct, multiplicity, seed):
    """Every address repeated k times -> exactly k sets of n_distinct."""
    rng = np.random.default_rng(seed)
    v = rng.permutation(np.repeat(np.arange(1, n_distinct + 1), multiplicity))
    dec = fol1(fresh_vm(seed, size=256), v)
    assert dec.m == multiplicity
    assert dec.cardinalities() == [n_distinct] * multiplicity
    dec.validate()


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 60), seed=st.integers(0, 5))
def test_theorem6_exact_element_work(n, seed):
    """All-identical input: element work is exactly N(N+1)/2."""
    dec = fol1(fresh_vm(seed, size=256), np.full(n, 3, dtype=np.int64))
    check_theorem6_quadratic(dec)
    assert fol1_element_work(dec) == n * (n + 1) // 2


@settings(max_examples=30, deadline=None)
@given(v=index_vectors.filter(lambda v: v.size > 0), seed=st.integers(0, 7))
def test_on_set_interleaving_equals_batch(v, seed):
    """Processing sets via on_set (Figure 7 amalgamation) yields the
    same decomposition as consuming the returned object."""
    collected = []
    dec = fol1(
        fresh_vm(seed, size=256 + 8),
        v,
        on_set=lambda s, j: collected.append(s.copy()),
    )
    assert len(collected) == dec.m
    for a, b in zip(collected, dec.sets):
        assert np.array_equal(a, b)


@settings(max_examples=30, deadline=None)
@given(v=index_vectors.filter(lambda v: v.size > 0), seed=st.integers(0, 7))
def test_work_offset_equivalence(v, seed):
    """A disjoint work area yields the same decomposition structure as
    the shared-storage work area."""
    d1 = fol1(fresh_vm(seed, size=600), v)
    d2 = fol1(fresh_vm(seed, size=600), v, work_offset=300)
    assert d1.cardinalities() == d2.cardinalities()
