"""Tests for the bench harness: workloads, paired runners, figures."""

import numpy as np
import pytest

from repro.bench import runner, workloads
from repro.bench.figures import (
    EXPERIMENTS,
    ablation_conflict_policy,
    ablation_fol_scaling,
    fig9_10,
    table1,
)
from repro.machine import CostModel

FAST = CostModel.free()  # runners only need consistent counting for these tests


class TestWorkloads:
    def test_unique_keys_are_unique(self, rng):
        k = workloads.unique_keys(rng, 100)
        assert np.unique(k).size == 100
        assert (k >= 0).all()

    def test_unique_keys_bounds(self, rng):
        with pytest.raises(ValueError):
            workloads.unique_keys(rng, 10, key_max=5)

    def test_keys_for_load_factor(self, rng):
        k = workloads.keys_for_load_factor(rng, 100, 0.25)
        assert k.size == 25
        with pytest.raises(ValueError):
            workloads.keys_for_load_factor(rng, 100, 1.5)

    def test_duplicated_addresses(self, rng):
        v = workloads.duplicated_addresses(rng, 50, 10)
        assert v.size == 50
        assert np.unique(v).size == 10
        with pytest.raises(ValueError):
            workloads.duplicated_addresses(rng, 10, 20)

    def test_multiplicity_vector(self, rng):
        v = workloads.multiplicity_vector(rng, 5, 3)
        assert v.size == 15
        _, counts = np.unique(v, return_counts=True)
        assert (counts == 3).all()

    def test_sort_values_duplicates_knob(self, rng):
        v = workloads.sort_values(rng, 200, 10**6, duplicates=0.9)
        assert np.unique(v).size <= 20 + 1

    def test_random_maze_corners_open(self, rng):
        g = workloads.random_maze(rng, 10, 12, 0.9)
        assert g[0, 0] == 0 and g[9, 11] == 0

    def test_bst_keys_shapes(self, rng):
        init, ins = workloads.bst_keys(rng, 10, 20)
        assert init.size == 10 and ins.size == 20

    def test_comb_values(self):
        assert list(workloads.comb_values(3)) == [1, 2, 3]


class TestPairResult:
    def test_acceleration(self):
        r = runner.PairResult("x", 100.0, 25.0)
        assert r.acceleration == 4.0

    def test_zero_vector_cycles(self):
        assert runner.PairResult("x", 1.0, 0.0).acceleration == float("inf")

    def test_str_mentions_params(self):
        r = runner.PairResult("x", 10.0, 5.0, {"n": 3})
        assert "n=3" in str(r)


class TestRunners:
    """Each runner must verify scalar/vector result equivalence
    internally and return positive cycle counts under s810 costs."""

    def test_open_hashing(self):
        r = runner.run_open_hashing_pair(67, 0.4, seed=1)
        assert r.scalar_cycles > 0 and r.vector_cycles > 0
        assert r.params["n_keys"] == 27

    def test_chained_hashing(self):
        r = runner.run_chained_hashing_pair(37, 64, seed=1)
        assert r.acceleration > 0

    def test_address_calc(self):
        r = runner.run_address_calc_pair(64, seed=1)
        assert r.scalar_cycles > r.vector_cycles  # vector wins even small

    def test_address_calc_with_duplicates(self):
        r = runner.run_address_calc_pair(64, seed=1, duplicates=0.8)
        assert r.vector_cycles > 0

    def test_distribution(self):
        r = runner.run_distribution_pair(64, seed=1, key_range=256)
        assert r.scalar_cycles > 0

    def test_bst(self):
        r = runner.run_bst_pair(16, 32, seed=1)
        assert r.vector_cycles > 0

    def test_rewrite_comb_and_random(self):
        for shape in ("comb", "random"):
            r = runner.run_rewrite_pair(12, seed=1, shape=shape)
            assert r.vector_cycles > 0

    def test_gc(self):
        r = runner.run_gc_pair(64, seed=1)
        assert r.params["copied"] > 0

    def test_maze(self):
        r = runner.run_maze_pair(8, 8, seed=1)
        assert r.vector_cycles > 0

    def test_lists(self):
        r = runner.run_lists_pair(4, 6, 4, seed=1)
        assert r.vector_cycles > 0

    def test_lists_uniform_worst_case(self):
        r = runner.run_lists_pair(4, 6, 4, seed=1, uniform_lengths=True)
        assert r.vector_cycles > 0


class TestFigures:
    def test_fig9_10_small(self):
        s = fig9_10(table_sizes=(67,), load_factors=(0.2, 0.5), seed=0)
        assert len(s.rows) == 2
        assert all(row[4] > 0 for row in s.rows)  # accel column

    def test_table1_small(self):
        s = table1(sizes=(64,), seed=0)
        assert len(s.rows) == 2  # one per algorithm
        assert {row[0] for row in s.rows} == {"address_calc", "distribution"}

    def test_ablation_fol_scaling_shapes(self):
        s = ablation_fol_scaling(sizes=(64, 256), seed=0)
        per_n = {(r[0], r[1]): r[3] for r in s.rows}
        # quadratic regime's per-element cost grows; linear regime's doesn't
        assert per_n[(256, "all_shared")] > per_n[(64, "all_shared")] * 2
        assert per_n[(256, "no_sharing")] < per_n[(64, "no_sharing")] * 1.5

    def test_ablation_conflict_policy_runs(self):
        s = ablation_conflict_policy(seed=0)
        assert len(s.rows) == 6

    def test_registry_complete(self):
        assert {"fig9", "fig10", "table1", "fig14"} <= set(EXPERIMENTS)

    def test_series_render(self):
        s = table1(sizes=(64,), seed=0)
        text = s.render()
        assert "address_calc" in text
        assert "paper_accel" in text


class TestFigureSmoke:
    def test_fig14_small(self):
        from repro.bench.figures import fig14
        s = fig14(ni_values=(8,), insert_counts=(25,), seed=0, n_seeds=1)
        assert len(s.rows) == 1
        assert s.rows[0][4] > 0

    def test_fig9_10_seed_averaging(self):
        from repro.bench.figures import fig9_10
        s = fig9_10(table_sizes=(67,), load_factors=(0.4,), seed=0, n_seeds=2)
        assert len(s.rows) == 1

    def test_run_components_pair(self):
        from repro.bench.runner import run_components_pair
        r = run_components_pair(64, 96, seed=1)
        assert r.vector_cycles > 0

    def test_run_rebalance_pair(self):
        from repro.bench.runner import run_rebalance_pair
        r = run_rebalance_pair(32, seed=1)
        assert r.params["depth"] == 6  # minimal height of 32 nodes

    def test_run_join_pair(self):
        from repro.bench.runner import run_join_pair
        r = run_join_pair(32, 48, key_range=40, seed=1)
        assert r.params["matches"] > 0
