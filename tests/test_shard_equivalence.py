"""Property-based equivalence: running a request stream through the
K-shard engine (:mod:`repro.shard`) — under any partitioner, any shard
count, with or without live migration — leaves the *merged* global
state identical to one-shot FOL1 on a single pipeline.

The merged state is the global meaning a sharded engine assigns its
workers' memories (see ``docs/sharding.md`` §2):

* chained hash table — per-slot key multiset, unioned across shards
  (each slot has one owner at a time, but migration may leave parts of
  a chain on former owners; the union is what the table contains);
* BST — sorted merge of per-shard inorders, with every shard's tree
  individually satisfying the search invariant;
* shared list cells — per-cell sum of the shards' contributions
  (``"xfer"`` tuples move value between cells, possibly across shards
  through the claim/commit path, so conservation is part of the
  property).

Migration runs with zero cooldown and a hair-trigger threshold here, so
routes change constantly mid-stream — the hardest schedule for the
re-routing of in-flight carryover lanes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import CostModel
from repro.runtime import (
    FixedBatcher,
    Request,
    StreamExecutor,
    StreamService,
)
from repro.shard import ShardCoordinator

FREE = CostModel.free()
TABLE_SIZE = 11
N_CELLS = 8
KEY_SPACE = 13

SHARD_COUNTS = (1, 2, 4, 7)


def build_requests(ops):
    """Materialise (kind, key, key2, delta) tuples as fresh Requests."""
    out = []
    for rid, (kind, key, key2, delta) in enumerate(ops):
        if kind in ("list", "xfer"):
            key %= N_CELLS
        out.append(
            Request(rid=rid, kind=kind, key=key, delta=delta,
                    key2=key2 if kind == "xfer" else -1)
        )
    return out


def one_shot_state(ops):
    """Reference: the whole stream as one batch of in-batch-retry FOL."""
    reqs = build_requests(ops)
    executor = StreamExecutor.for_workload(
        reqs, table_size=TABLE_SIZE, n_cells=N_CELLS,
        carryover=False, cost_model=FREE,
    )
    result = executor.execute(reqs)
    assert not result.carried
    chains = {
        slot: sorted(executor.table.chain(slot))
        for slot in range(TABLE_SIZE)
        if executor.table.chain(slot)
    }
    executor.tree.check_bst_invariant()
    return chains, executor.tree.inorder(), executor.list_values()


def run_sharded(ops, shards, partitioner, rebalance):
    reqs = build_requests(ops)
    coordinator = ShardCoordinator.for_workload(
        reqs,
        shards=shards,
        partitioner=partitioner,
        rebalance=rebalance,
        table_size=TABLE_SIZE,
        n_cells=N_CELLS,
        key_space=KEY_SPACE,
        cost_model=FREE,
        # Hair-trigger migration: re-partition as often as possible.
        rebalance_threshold=1.01,
        rebalance_cooldown=0,
    )
    service = StreamService(coordinator, batcher=FixedBatcher(batch_size=7))
    metrics = service.run(reqs)
    assert metrics.summary()["completed"] == len(reqs)
    return coordinator


operations = st.lists(
    st.tuples(
        st.sampled_from(["hash", "bst", "list", "xfer"]),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=N_CELLS - 1),
        st.integers(min_value=1, max_value=9),
    ),
    max_size=40,
)


@settings(max_examples=25, deadline=None)
@given(
    ops=operations,
    shards=st.sampled_from(SHARD_COUNTS),
    partitioner=st.sampled_from(["hash", "range"]),
    rebalance=st.booleans(),
)
def test_sharded_matches_one_shot(ops, shards, partitioner, rebalance):
    chains, inorder, cells = one_shot_state(ops)
    coordinator = run_sharded(ops, shards, partitioner, rebalance)
    assert coordinator.chain_multisets() == chains
    assert coordinator.bst_inorder() == sorted(inorder)
    assert coordinator.list_values() == cells


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("rebalance", [False, True])
def test_hot_key_pileup_sharded(shards, rebalance):
    """Theorem 6's regime under sharding: every request aliases one
    address, so one shard serialises the conflicts while migration
    (when enabled) keeps trying to move the hot index."""
    ops = [("hash", 5, 0, 1)] * 25 + [("xfer", 3, 3 % N_CELLS, 2)] * 10
    chains, inorder, cells = one_shot_state(ops)
    coordinator = run_sharded(ops, shards, "range", rebalance)
    assert coordinator.chain_multisets() == chains
    assert coordinator.list_values() == cells


@pytest.mark.parametrize("shards", [2, 4, 7])
def test_migration_actually_happens_and_preserves_state(shards):
    """The migration schedule in these tests is not vacuous: a skewed
    stream under a range partition must trigger moves, and the moved
    chains/cells must still merge to the one-shot state."""
    rng = np.random.default_rng(5)
    ops = [
        ("hash", int(k) % 13, 0, 1)
        for k in rng.zipf(1.6, size=60)
    ] + [
        ("xfer", int(a) % N_CELLS, int(b) % N_CELLS, 1 + int(b) % 5)
        for a, b in zip(rng.zipf(1.6, size=30), rng.integers(0, 64, size=30))
    ]
    chains, inorder, cells = one_shot_state(ops)
    coordinator = run_sharded(ops, shards, "range", rebalance=True)
    assert coordinator.total_migrations > 0
    assert coordinator.chain_multisets() == chains
    assert coordinator.list_values() == cells


@settings(max_examples=20, deadline=None)
@given(
    updates=st.lists(
        st.tuples(
            st.integers(0, N_CELLS - 1),
            st.integers(0, N_CELLS - 1),
            st.integers(1, 9),
        ),
        max_size=40,
    ),
    shards=st.sampled_from(SHARD_COUNTS),
    partitioner=st.sampled_from(["hash", "range"]),
)
def test_xfer_conserves_and_matches_delta_flows(updates, shards, partitioner):
    """Pure transfer streams: final cell values equal the net delta
    flow (src loses, dst gains) and the global sum stays zero — even
    when every tuple crosses shards through claim/commit."""
    ops = [("xfer", src, dst, d) for src, dst, d in updates]
    coordinator = run_sharded(ops, shards, partitioner, rebalance=False)
    expected = [0] * N_CELLS
    for src, dst, d in updates:
        expected[src] -= d
        expected[dst] += d
    assert coordinator.list_values() == expected
    assert sum(coordinator.list_values()) == 0
