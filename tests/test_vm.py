"""Unit tests for the vector-unit facade (Fortran-90-style primitives)."""

import numpy as np
import pytest

from repro.errors import VectorLengthError
from repro.machine import CostModel, Memory, VectorMachine


class TestGeneration:
    def test_iota(self, vm):
        assert np.array_equal(vm.iota(5), np.arange(5))

    def test_iota_start_step(self, vm):
        assert np.array_equal(vm.iota(4, start=10, step=3), [10, 13, 16, 19])

    def test_iota_empty(self, vm):
        assert vm.iota(0).size == 0

    def test_iota_negative_length(self, vm):
        with pytest.raises(VectorLengthError):
            vm.iota(-1)

    def test_splat(self, vm):
        assert np.array_equal(vm.splat(3, 7), [7, 7, 7])


class TestArithmetic:
    def test_add_sub_mul(self, vm):
        a = np.array([1, 2, 3], dtype=np.int64)
        assert np.array_equal(vm.add(a, 1), [2, 3, 4])
        assert np.array_equal(vm.sub(a, a), [0, 0, 0])
        assert np.array_equal(vm.mul(a, 2), [2, 4, 6])

    def test_floordiv_mod(self, vm):
        a = np.array([7, 8, 9], dtype=np.int64)
        assert np.array_equal(vm.floordiv(a, 2), [3, 4, 4])
        assert np.array_equal(vm.mod(a, 3), [1, 2, 0])

    def test_bitand(self, vm):
        assert np.array_equal(vm.bitand(np.array([5, 6]), 3), [1, 2])

    def test_neg(self, vm):
        assert np.array_equal(vm.neg(np.array([1, -2])), [-1, 2])

    def test_length_mismatch_raises(self, vm):
        with pytest.raises(VectorLengthError):
            vm.add(np.arange(3), np.arange(4))

    def test_scalar_scalar_rejected(self, vm):
        with pytest.raises(VectorLengthError):
            vm.add(1, 2)


class TestComparisons:
    def test_all_six(self, vm):
        a = np.array([1, 2, 3], dtype=np.int64)
        b = np.array([2, 2, 2], dtype=np.int64)
        assert np.array_equal(vm.eq(a, b), [False, True, False])
        assert np.array_equal(vm.ne(a, b), [True, False, True])
        assert np.array_equal(vm.lt(a, b), [True, False, False])
        assert np.array_equal(vm.le(a, b), [True, True, False])
        assert np.array_equal(vm.gt(a, b), [False, False, True])
        assert np.array_equal(vm.ge(a, b), [False, True, True])


class TestMasks:
    def test_mask_algebra(self, vm):
        a = np.array([True, True, False])
        b = np.array([True, False, False])
        assert np.array_equal(vm.mask_and(a, b), [True, False, False])
        assert np.array_equal(vm.mask_or(a, b), [True, True, False])
        assert np.array_equal(vm.mask_not(a), [False, False, True])

    def test_select(self, vm):
        m = np.array([True, False, True])
        assert np.array_equal(vm.select(m, 1, 0), [1, 0, 1])

    def test_select_paper_example(self, vm):
        """The paper's where-statement example: A=(1,2,3), B=(10,11,12),
        M=(T,F,T) => A becomes (10,2,12)."""
        a = np.array([1, 2, 3], dtype=np.int64)
        b = np.array([10, 11, 12], dtype=np.int64)
        m = np.array([True, False, True])
        assert np.array_equal(vm.select(m, b, a), [10, 2, 12])


class TestCompressReduce:
    def test_compress_paper_example(self, vm):
        """A where M: A=(1,2,3), M=(T,F,T) => (1,3)."""
        out = vm.compress(np.array([1, 2, 3]), np.array([True, False, True]))
        assert np.array_equal(out, [1, 3])

    def test_compress_returns_copy(self, vm):
        a = np.array([1, 2, 3], dtype=np.int64)
        out = vm.compress(a, np.array([True, True, True]))
        out[0] = 99
        assert a[0] == 1

    def test_count_true_paper_example(self, vm):
        """countTrue((T,F,T)) = 2."""
        assert vm.count_true(np.array([True, False, True])) == 2

    def test_reductions(self, vm):
        a = np.array([3, 1, 2], dtype=np.int64)
        assert vm.vsum(a) == 6
        assert vm.vmax(a) == 3
        assert vm.vmin(a) == 1

    def test_any_all(self, vm):
        assert vm.any_true(np.array([False, True]))
        assert not vm.all_true(np.array([False, True]))

    def test_cumsum_exclusive(self, vm):
        out = vm.cumsum_exclusive(np.array([3, 1, 4], dtype=np.int64))
        assert np.array_equal(out, [0, 3, 4])

    def test_cumsum_single(self, vm):
        assert np.array_equal(vm.cumsum_exclusive(np.array([5])), [0])


class TestMemoryConveniences:
    def test_scatter_broadcasts_scalar_values(self, vm):
        vm.scatter(np.array([2, 4]), 7)
        assert vm.mem.peek(2) == 7
        assert vm.mem.peek(4) == 7

    def test_scatter_masked_broadcasts(self, vm):
        vm.scatter_masked(np.array([2, 4]), 9, np.array([False, True]))
        assert vm.mem.peek(2) == 0
        assert vm.mem.peek(4) == 9


class TestCharging:
    def test_alu_cost(self):
        cm = CostModel(vector_startup=5.0, chime_alu=1.0)
        vm = VectorMachine(Memory(64, cost_model=cm))
        vm.add(np.arange(8, dtype=np.int64), 1)
        assert vm.counter.vector_cycles == 5.0 + 8.0

    def test_compress_cost_charged_on_input_width(self):
        cm = CostModel(vector_startup=0.0, chime_compress=2.0)
        vm = VectorMachine(Memory(64, cost_model=cm))
        vm.compress(np.arange(10, dtype=np.int64), np.zeros(10, dtype=bool))
        assert vm.counter.vector_cycles == 20.0

    def test_scan_uses_scan_chime(self):
        cm = CostModel(vector_startup=0.0, chime_scan=4.0, chime_reduce=1.0)
        vm = VectorMachine(Memory(64, cost_model=cm))
        vm.cumsum_exclusive(np.arange(10, dtype=np.int64))
        assert vm.counter.vector_cycles == 40.0

    def test_loop_overhead_is_scalar(self):
        cm = CostModel(scalar_branch=7.0)
        vm = VectorMachine(Memory(64, cost_model=cm))
        vm.loop_overhead()
        assert vm.counter.scalar_cycles == 7.0
        assert vm.counter.vector_cycles == 0.0
