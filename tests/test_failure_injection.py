"""Failure injection: what happens when the hardware contract breaks.

FOL's correctness rests entirely on the ELS condition.  These tests
inject faulty scatter behaviours (amalgamated words, lost writes) and
verify the library fails *loudly* — FOL detects a round that makes no
progress and raises :class:`DeadlockError` instead of looping forever or
silently corrupting data."""

import numpy as np
import pytest

from repro.core import fol1, fol_star
from repro.errors import DeadlockError
from repro.machine import CostModel, Memory, VectorMachine


class AmalgamMemory(Memory):
    """Violates ELS: conflicting writes to one word are OR-combined into
    an amalgam that equals none of the written values (what word-tearing
    across parallel pipes would look like)."""

    def _raw_scatter(self, addrs, values, policy):
        for a in np.unique(addrs):
            vs = values[addrs == a]
            if vs.size == 1:
                self.words[a] = vs[0]
            else:
                # an amalgam: bitwise OR plus a poisoned high bit so it
                # can never equal any single written label
                self.words[a] = int(np.bitwise_or.reduce(vs)) | (1 << 40)


class LostWriteMemory(Memory):
    """Violates ELS differently: conflicting writes are all *dropped*
    (the word keeps its old contents)."""

    def _raw_scatter(self, addrs, values, policy):
        for a in np.unique(addrs):
            vs = values[addrs == a]
            if vs.size == 1:
                self.words[a] = vs[0]
            # else: drop every write


def make_vm(mem_cls, seed=0, size=512):
    return VectorMachine(mem_cls(size, cost_model=CostModel.free(), seed=seed))


class TestFol1UnderBrokenEls:
    def test_amalgam_raises_deadlock(self):
        vm = make_vm(AmalgamMemory)
        with pytest.raises(DeadlockError):
            fol1(vm, np.array([5, 5, 5]))

    def test_lost_writes_raise_deadlock(self):
        vm = make_vm(LostWriteMemory)
        with pytest.raises(DeadlockError):
            fol1(vm, np.array([5, 5, 5]))

    def test_conflict_free_input_unaffected(self):
        """Without duplicates the broken paths never trigger, so the
        degraded hardware still yields a correct single-set answer."""
        vm = make_vm(AmalgamMemory)
        dec = fol1(vm, np.array([3, 4, 5]))
        assert dec.m == 1
        dec.validate()


class TestFolStarUnderBrokenEls:
    def test_scalar_tail_rescues_progress(self):
        """FOL* is *robust* to a broken vector scatter: the footnote's
        scalar-tail writes bypass the vector pipes, so the last tuple
        always survives — the decomposition degrades to singleton sets
        (no parallelism) but stays valid rather than deadlocking."""
        vm = make_vm(AmalgamMemory)
        v1 = np.full(3, 7, dtype=np.int64)
        v2 = np.array([20, 21, 22], dtype=np.int64)
        dec = fol_star(vm, [v1, v2])
        dec.validate()
        assert dec.cardinalities() == [1, 1, 1]


class TestApplicationsUnderBrokenEls:
    def test_chained_hashing_fails_loudly(self):
        from repro.hashing import ChainedHashTable, vector_chained_insert
        from repro.mem import BumpAllocator

        vm = make_vm(LostWriteMemory, size=4096)
        table = ChainedHashTable(BumpAllocator(vm.mem), 13, 64)
        keys = np.full(8, 3, dtype=np.int64)  # all collide
        with pytest.raises(DeadlockError):
            vector_chained_insert(vm, table, keys)

    def test_bst_insert_fails_loudly(self):
        from repro.errors import ReproError
        from repro.mem import BumpAllocator
        from repro.trees import BinarySearchTree, vector_bst_insert

        vm = make_vm(LostWriteMemory, size=4096)
        tree = BinarySearchTree(BumpAllocator(vm.mem), 64)
        with pytest.raises(ReproError):
            vector_bst_insert(vm, tree, np.full(4, 9, dtype=np.int64))
